"""Cluster-serving suite: phase steppers, devices, routers, determinism.

The contract under test, from the multi-device refactor:

* **Phase split** — every steppable decoder exposes draft/verify phases
  whose costs partition the SimClock exactly; ``drain()`` (phase path) and
  the legacy ``decode()`` are bit-identical; the atomic ``step()`` is a
  thin wrapper over the phases of one round.
* **Cluster determinism** — a fixed arrival trace produces bit-identical
  transcripts and per-request ``decode_ms`` across device counts
  (1, 2, 4) and all router policies, and rerunning any fixed
  configuration reproduces identical latency totals.
* **Placement semantics** — colocated keeps a request on one device,
  disaggregation separates draft-model from target-model work, merged
  verification coalesces co-scheduled verify passes.
"""

from __future__ import annotations

import pytest

from repro.decoding.base import (
    PHASE_DRAFT,
    PHASE_VERIFY,
    PhaseOutcome,
    begin_decode,
)
from repro.decoding.tree_spec import FixedTreeConfig, FixedTreeDecoder
from repro.harness.methods import build_method
from repro.serving import (
    ClusterConfig,
    ContinuousBatchScheduler,
    Device,
    SchedulerConfig,
    ServeSimConfig,
    normalize_router,
    parse_device_specs,
    poisson_trace,
    simulate,
    uniform_trace,
)
from repro.serving.request import STATUS_COMPLETED

PHASED_METHODS = ("autoregressive", "spec(8,1)", "spec(8,2)", "specasr-asp")

HETERO = parse_device_specs("2x1.0,2x0.5")

CLUSTERS = (
    ClusterConfig(devices=1, router="colocated"),
    ClusterConfig(devices=2, router="colocated"),
    ClusterConfig(devices=2, router="disaggregated"),
    ClusterConfig(devices=2, router="merged"),
    ClusterConfig(devices=4, router="colocated"),
    ClusterConfig(devices=4, router="disaggregated"),
    ClusterConfig(devices=4, router="merged"),
    # workload-aware pool splits, homogeneous and heterogeneous
    ClusterConfig(devices=4, router="disaggregated", split="balanced"),
    ClusterConfig(devices=4, router="merged", split="balanced"),
    ClusterConfig(devices=4, router="colocated", device_specs=HETERO),
    ClusterConfig(devices=4, router="disaggregated", device_specs=HETERO),
    ClusterConfig(
        devices=4, router="disaggregated", split="balanced", device_specs=HETERO
    ),
    ClusterConfig(devices=4, router="merged", split="balanced", device_specs=HETERO),
    ClusterConfig(
        devices=3,
        router="merged",
        split="balanced",
        device_specs=parse_device_specs("2.0,2x0.5"),
    ),
)


def _cluster_id(config: ClusterConfig) -> str:
    parts = [f"{config.devices}x-{config.router}"]
    if config.split != "fixed":
        parts.append(config.split)
    if config.device_specs:
        parts.append("hetero")
    return "-".join(parts)


class TestPhaseSplitSteppers:
    @pytest.mark.parametrize("method", PHASED_METHODS)
    def test_phases_partition_decode(self, whisper_pair, clean_dataset, method):
        draft, target = whisper_pair
        utterance = clean_dataset[0]
        decoder = build_method(method, draft, target)
        reference = decoder.decode(utterance)

        stepper = begin_decode(decoder, utterance)
        phases: list[PhaseOutcome] = []
        while not stepper.done:
            phases.append(stepper.step_phase())
        result = stepper.result
        assert result.tokens == reference.tokens
        assert result.total_ms == reference.total_ms
        # phase costs partition the clock total exactly
        assert sum(p.ms for p in phases) == pytest.approx(reference.total_ms)
        assert phases[-1].done and phases[-1].round_done
        assert all(not p.done for p in phases[:-1])

    @pytest.mark.parametrize("method", PHASED_METHODS)
    def test_phase_model_tags(self, whisper_pair, clean_dataset, method):
        draft, target = whisper_pair
        decoder = build_method(method, draft, target)
        stepper = begin_decode(decoder, clean_dataset[1])
        phases = []
        while not stepper.done:
            phases.append(stepper.step_phase())
        for phase in phases:
            if phase.phase == PHASE_DRAFT:
                assert phase.model == draft.name
                assert phase.new_tokens == ()  # tokens commit at verify
            else:
                assert phase.phase == PHASE_VERIFY
                assert phase.model == target.name
        if method == "autoregressive":
            assert all(p.phase == PHASE_VERIFY for p in phases)
        else:
            # one draft phase then one verify phase per round
            kinds = [p.phase for p in phases]
            assert kinds == [PHASE_DRAFT, PHASE_VERIFY] * (len(kinds) // 2)

    @pytest.mark.parametrize("method", ("spec(8,1)", "specasr-tsp"))
    def test_atomic_step_wraps_phases(self, whisper_pair, clean_dataset, method):
        draft, target = whisper_pair
        utterance = clean_dataset[2]
        decoder = build_method(method, draft, target)

        by_round = begin_decode(decoder, utterance)
        steps = []
        while not by_round.done:
            steps.append(by_round.step())

        by_phase = begin_decode(decoder, utterance)
        rounds = []
        while not by_phase.done:
            tokens, ms = [], 0.0
            while True:
                phase = by_phase.step_phase()
                tokens.extend(phase.new_tokens)
                ms += phase.ms
                if phase.round_done:
                    break
            rounds.append((tuple(tokens), ms))

        assert [(s.new_tokens, s.ms) for s in steps] == pytest.approx(rounds)
        assert by_round.result.tokens == by_phase.result.tokens
        assert by_round.result.total_ms == by_phase.result.total_ms

    def test_fallback_stepper_single_verify_phase(self, whisper_pair, clean_dataset):
        draft, target = whisper_pair
        decoder = FixedTreeDecoder(draft, target, FixedTreeConfig())
        assert not hasattr(decoder, "begin")
        stepper = begin_decode(decoder, clean_dataset[1])
        phase = stepper.step_phase()
        assert phase.done and phase.round_done
        assert phase.phase == PHASE_VERIFY
        assert phase.ms == pytest.approx(stepper.result.total_ms)

    def test_step_phase_after_done_raises(self, whisper_pair, clean_dataset):
        draft, target = whisper_pair
        decoder = build_method("specasr-asp", draft, target)
        stepper = begin_decode(decoder, clean_dataset[0])
        stepper.drain()
        with pytest.raises(RuntimeError):
            stepper.step_phase()


class TestDeviceModel:
    def _phase(self, model: str, kind: str, ms: float) -> PhaseOutcome:
        return PhaseOutcome(kind, model, ms, (), True, False)

    def test_single_model_group_overlap(self):
        device = Device(0, overlap=0.8)
        batch = [self._phase("target", PHASE_VERIFY, ms) for ms in (10.0, 20.0, 30.0)]
        # max + (1 - overlap) * rest = 30 + 0.2 * 30
        assert device.batch_busy_ms(batch) == pytest.approx(36.0)

    def test_cross_model_groups_serialise(self):
        device = Device(0, overlap=1.0, switch_cost=0.0)
        batch = [
            self._phase("draft", PHASE_DRAFT, 10.0),
            self._phase("draft", PHASE_DRAFT, 20.0),
            self._phase("target", PHASE_VERIFY, 30.0),
        ]
        # perfect overlap within groups, but draft and target add serially
        assert device.batch_busy_ms(batch) == pytest.approx(50.0)

    def test_mixed_model_batches_pay_residency_interference(self):
        device = Device(0, overlap=1.0, switch_cost=0.15)
        mixed = [
            self._phase("draft", PHASE_DRAFT, 10.0),
            self._phase("target", PHASE_VERIFY, 30.0),
        ]
        assert device.batch_busy_ms(mixed) == pytest.approx(40.0 * 1.15)
        # single-model batches (all a dedicated pool device ever runs)
        # never pay the switch inflation
        pure = [self._phase("target", PHASE_VERIFY, ms) for ms in (10.0, 30.0)]
        assert device.batch_busy_ms(pure) == pytest.approx(30.0)

    def test_merged_verify_coalesces_to_critical_path(self):
        device = Device(0, overlap=0.5)
        batch = [self._phase("target", PHASE_VERIFY, ms) for ms in (10.0, 30.0)]
        # standard overlap: 30 + 0.5 * 10; merged: critical path only
        assert device.batch_busy_ms(batch) == pytest.approx(35.0)
        assert device.batch_busy_ms(batch, merge_verify=True) == pytest.approx(30.0)
        # draft groups keep the device overlap even under merged verify
        drafts = [self._phase("draft", PHASE_DRAFT, ms) for ms in (10.0, 30.0)]
        assert device.batch_busy_ms(drafts, merge_verify=True) == pytest.approx(35.0)

    def test_execute_advances_timeline(self):
        device = Device(0, overlap=1.0)
        batch = [self._phase("target", PHASE_VERIFY, 10.0)]
        end = device.execute(5.0, batch)
        assert end == pytest.approx(15.0)
        # next batch queues behind the busy timeline
        end = device.execute(0.0, batch)
        assert end == pytest.approx(25.0)
        assert device.busy_ms == pytest.approx(20.0)
        assert device.batches == 2 and device.phases == 2
        with pytest.raises(ValueError):
            device.execute(0.0, [])


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(devices=0)
        with pytest.raises(ValueError):
            ClusterConfig(devices=2, router="sharded")
        with pytest.raises(ValueError):
            ClusterConfig(devices=1, router="disaggregated")
        with pytest.raises(ValueError):
            ClusterConfig(devices=1, router="merged")

    def test_disagg_alias(self):
        assert normalize_router("disagg") == "disaggregated"
        assert ClusterConfig(devices=2, router="disagg").router == "disaggregated"


class TestClusterDeterminism:
    @pytest.fixture(scope="class")
    def trace(self, clean_dataset):
        return poisson_trace(14, 4.0, len(clean_dataset), seed=23)

    def _run(self, whisper_pair, dataset, trace, cluster, method="specasr-asp"):
        draft, target = whisper_pair
        decoder = build_method(method, draft, target)
        scheduler = ContinuousBatchScheduler(decoder, SchedulerConfig(), cluster)
        return scheduler.run(trace, dataset), scheduler.last_stats

    @pytest.mark.parametrize("cluster", CLUSTERS, ids=_cluster_id)
    def test_transcripts_and_decode_ms_cluster_independent(
        self, whisper_pair, clean_dataset, trace, cluster
    ):
        reference, _ = self._run(
            whisper_pair, clean_dataset, trace, ClusterConfig(devices=1)
        )
        records, _ = self._run(whisper_pair, clean_dataset, trace, cluster)
        assert [r.tokens for r in records] == [r.tokens for r in reference]
        assert [r.decode_ms for r in records] == [r.decode_ms for r in reference]

    @pytest.mark.parametrize("cluster", CLUSTERS, ids=_cluster_id)
    def test_rerun_bit_identical(self, whisper_pair, clean_dataset, trace, cluster):
        a, stats_a = self._run(whisper_pair, clean_dataset, trace, cluster)
        b, stats_b = self._run(whisper_pair, clean_dataset, trace, cluster)
        assert [r.tokens for r in a] == [r.tokens for r in b]
        assert [r.finish_ms for r in a] == [r.finish_ms for r in b]
        assert [r.first_token_ms for r in a] == [r.first_token_ms for r in b]
        assert stats_a == stats_b

    def test_timeline_sanity_on_cluster(self, whisper_pair, clean_dataset, trace):
        records, stats = self._run(
            whisper_pair,
            clean_dataset,
            trace,
            ClusterConfig(devices=2, router="disaggregated"),
        )
        for r in records:
            assert r.status == STATUS_COMPLETED
            assert r.service_start_ms >= r.request.arrival_ms
            assert r.first_token_ms >= r.service_start_ms
            assert r.finish_ms >= r.first_token_ms
        assert stats.devices == 2
        assert len(stats.per_device_busy_ms) == 2
        assert sum(stats.per_device_busy_ms) == pytest.approx(stats.device_busy_ms)
        assert 0 < stats.device_utilisation <= 1.0


class TestPlacementSemantics:
    def _stats(self, whisper_pair, dataset, cluster, method):
        draft, target = whisper_pair
        decoder = build_method(method, draft, target)
        scheduler = ContinuousBatchScheduler(decoder, SchedulerConfig(), cluster)
        trace = uniform_trace(8, 4.0, len(dataset), seed=3)
        records = scheduler.run(trace, dataset)
        assert all(r.status == STATUS_COMPLETED for r in records)
        return scheduler.last_stats

    def test_disaggregation_splits_draft_and_target_work(
        self, whisper_pair, clean_dataset
    ):
        stats = self._stats(
            whisper_pair,
            clean_dataset,
            ClusterConfig(devices=2, router="disaggregated"),
            "specasr-asp",
        )
        # both pools see work: device 0 drafts, device 1 verifies
        assert stats.per_device_busy_ms[0] > 0
        assert stats.per_device_busy_ms[1] > 0

    def test_autoregressive_never_touches_draft_pool(
        self, whisper_pair, clean_dataset
    ):
        stats = self._stats(
            whisper_pair,
            clean_dataset,
            ClusterConfig(devices=2, router="disaggregated"),
            "autoregressive",
        )
        # AR rounds are pure target phases; the draft pool stays idle
        assert stats.per_device_busy_ms[0] == 0.0
        assert stats.per_device_busy_ms[1] > 0

    def test_merged_verify_does_not_exceed_disagg_busy(
        self, whisper_pair, clean_dataset
    ):
        disagg = self._stats(
            whisper_pair,
            clean_dataset,
            ClusterConfig(devices=2, router="disaggregated"),
            "specasr-asp",
        )
        merged = self._stats(
            whisper_pair,
            clean_dataset,
            ClusterConfig(devices=2, router="merged"),
            "specasr-asp",
        )
        # coalesced verify passes can only shrink target-device occupancy
        assert merged.device_busy_ms <= disagg.device_busy_ms + 1e-9

    def test_non_phased_decoder_rejected_on_disaggregating_router(
        self, whisper_pair, clean_dataset
    ):
        draft, target = whisper_pair
        decoder = FixedTreeDecoder(draft, target, FixedTreeConfig())
        trace = uniform_trace(2, 1.0, len(clean_dataset), seed=1)
        for router in ("disaggregated", "merged"):
            scheduler = ContinuousBatchScheduler(
                decoder,
                SchedulerConfig(),
                ClusterConfig(devices=2, router=router),
            )
            with pytest.raises(ValueError, match="phase-split"):
                scheduler.run(trace, clean_dataset)
        # the colocated policy still accepts whole-decode fallbacks
        scheduler = ContinuousBatchScheduler(
            decoder, SchedulerConfig(), ClusterConfig(devices=2)
        )
        records = scheduler.run(trace, clean_dataset)
        assert all(r.status == STATUS_COMPLETED for r in records)

    def test_balanced_split_records_measured_share(self, whisper_pair, clean_dataset):
        stats = self._stats(
            whisper_pair,
            clean_dataset,
            ClusterConfig(devices=4, router="disaggregated", split="balanced"),
            "specasr-asp",
        )
        assert stats.draft_share is not None
        assert 0.0 < stats.draft_share < 1.0
        assert stats.device_roles.count("draft") >= 1
        assert stats.device_roles.count("target") >= 1
        assert len(stats.device_roles) == 4

    def test_fixed_split_measures_nothing(self, whisper_pair, clean_dataset):
        stats = self._stats(
            whisper_pair,
            clean_dataset,
            ClusterConfig(devices=2, router="disaggregated"),
            "specasr-asp",
        )
        assert stats.draft_share is None
        assert stats.device_roles == ("draft", "target")

    def test_balanced_hetero_gives_fast_devices_to_verify(
        self, whisper_pair, clean_dataset
    ):
        stats = self._stats(
            whisper_pair,
            clean_dataset,
            ClusterConfig(
                devices=4,
                router="disaggregated",
                split="balanced",
                device_specs=HETERO,
            ),
            "specasr-asp",
        )
        assert stats.device_speeds == (1.0, 1.0, 0.5, 0.5)
        # with a draft share well under the fast devices' speed fraction,
        # the full-speed parts must end up in the target pool
        fast_roles = {stats.device_roles[0], stats.device_roles[1]}
        assert fast_roles == {"target"}

    def test_least_loaded_routing_uses_whole_pool(self, whisper_pair, clean_dataset):
        # 1 draft + 3 target devices: least-loaded verify routing must
        # spread work across every target device, not a static hash bucket
        draft, target = whisper_pair
        decoder = build_method("specasr-asp", draft, target)
        scheduler = ContinuousBatchScheduler(
            decoder,
            SchedulerConfig(max_batch=2, max_inflight=8),
            ClusterConfig(devices=4, router="disaggregated", split="balanced"),
        )
        trace = uniform_trace(12, 8.0, len(clean_dataset), seed=11)
        records = scheduler.run(trace, clean_dataset)
        assert all(r.status == STATUS_COMPLETED for r in records)
        stats = scheduler.last_stats
        for role, busy in zip(
            stats.device_roles, stats.per_device_busy_ms, strict=True
        ):
            assert busy > 0.0, f"idle {role} device in a saturated pool"

    def test_sharding_speeds_up_saturated_serving(self, whisper_pair, clean_dataset):
        draft, target = whisper_pair
        decoder = build_method("specasr-asp", draft, target)
        trace = uniform_trace(10, 6.0, len(clean_dataset), seed=5)
        totals = {}
        for devices in (1, 2):
            scheduler = ContinuousBatchScheduler(
                decoder, SchedulerConfig(), ClusterConfig(devices=devices)
            )
            records = scheduler.run(trace, clean_dataset)
            totals[devices] = sum(r.completion_ms for r in records)
        assert totals[2] < totals[1]


class TestEmptyTraceStats:
    def test_stats_zero_on_empty_trace(self, whisper_pair, clean_dataset):
        draft, target = whisper_pair
        decoder = build_method("autoregressive", draft, target)
        scheduler = ContinuousBatchScheduler(decoder, SchedulerConfig())
        records = scheduler.run([], clean_dataset)
        stats = scheduler.last_stats
        assert records == []
        assert stats.sim_end_ms == 0.0
        assert stats.device_utilisation == 0.0
        assert stats.mean_batch_occupancy == 0.0

    def test_stats_guard_degenerate_values(self):
        from repro.serving import ScheduleStats

        stats = ScheduleStats(
            sim_end_ms=0.0,
            device_busy_ms=0.0,
            batches=0,
            rounds=0,
            peak_queue_depth=0,
            rejected=0,
        )
        assert stats.device_utilisation == 0.0
        assert stats.mean_batch_occupancy == 0.0


class TestClusterSimulate:
    def test_simulate_with_cluster_deterministic(self):
        config = ServeSimConfig(
            method="spec(8,1)",
            qps=3.0,
            num_requests=10,
            utterances=8,
            devices=2,
            router="merged",
        )
        assert simulate(config).to_dict() == simulate(config).to_dict()

    def test_report_carries_cluster_shape(self):
        config = ServeSimConfig(
            method="specasr-asp",
            qps=2.0,
            num_requests=8,
            utterances=8,
            devices=2,
            router="disaggregated",
        )
        payload = simulate(config).to_dict()
        assert payload["devices"] == 2
        assert len(payload["per_device_busy_ms"]) == 2
