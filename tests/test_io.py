"""Tests for report serialization (repro.harness.io)."""

import pytest

from repro.harness.experiments.base import ExperimentReport
from repro.harness.io import diff_metrics, load_report, report_to_dict, save_report


@pytest.fixture()
def report():
    return ExperimentReport(
        exp_id="fig99",
        title="synthetic",
        headers=["a", "b"],
        rows=[["x", 1.5], ["y", 2.5]],
        metrics={"m1": 1.0, "m2": 10.0},
        extra_sections=["note"],
    )


class TestSerialization:
    def test_roundtrip(self, report, tmp_path):
        path = save_report(report, tmp_path / "sub" / "fig99.json")
        loaded = load_report(path)
        assert loaded["exp_id"] == "fig99"
        assert loaded["rows"] == [["x", 1.5], ["y", 2.5]]
        assert loaded["metrics"] == {"m1": 1.0, "m2": 10.0}
        assert "version" in loaded

    def test_dict_view_is_plain_data(self, report):
        data = report_to_dict(report)
        import json

        json.dumps(data)  # must be JSON-serialisable as-is

    def test_diff_metrics_flags_drift(self, report, tmp_path):
        old = report_to_dict(report)
        new = report_to_dict(report)
        new["metrics"] = {"m1": 1.0, "m2": 12.0}  # 20 % drift
        drifted = diff_metrics(old, new, tolerance=0.05)
        assert set(drifted) == {"m2"}
        assert drifted["m2"] == (10.0, 12.0)

    def test_diff_metrics_tolerates_small_changes(self, report):
        old = report_to_dict(report)
        new = report_to_dict(report)
        new["metrics"] = {"m1": 1.02, "m2": 10.1}
        assert diff_metrics(old, new, tolerance=0.05) == {}

    def test_cli_json_export(self, tmp_path, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "run",
                    "fig13b",
                    "--utterances",
                    "4",
                    "--json-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        saved = load_report(tmp_path / "fig13b.json")
        assert saved["exp_id"] == "fig13b"
