"""Serving-layer suite: steppers, arrivals, queueing, scheduler, SLO report.

The two contracts the continuous-batching scheduler must uphold:

* **Determinism** — a fixed seed + arrival trace reproduces bit-identical
  transcripts and latency totals across runs, and per-request transcripts /
  decode times are *scheduler-independent* (identical between the serial
  run-to-completion corner and any batched configuration).
* **Backpressure** — overload turns into bounded queues and explicit
  rejections, never unbounded latency.
"""

from __future__ import annotations

import pytest

from repro.decoding.base import StepOutcome, begin_decode
from repro.decoding.tree_spec import FixedTreeConfig, FixedTreeDecoder
from repro.harness.methods import build_method
from repro.metrics.latency_report import PercentileSummary, percentile
from repro.serving import (
    AdmissionQueue,
    ContinuousBatchScheduler,
    SchedulerConfig,
    ServeSimConfig,
    load_trace,
    make_trace,
    max_sustainable_qps,
    offered_qps,
    poisson_trace,
    save_trace,
    simulate,
    uniform_trace,
)
from repro.serving.request import (
    STATUS_COMPLETED,
    STATUS_REJECTED,
    RequestRecord,
    ServeRequest,
)

STEPPED_METHODS = ("autoregressive", "spec(8,1)", "spec(8,2)", "specasr-tsp")


def _record(index: int, utterance, arrival_ms: float = 0.0) -> RequestRecord:
    request = ServeRequest(f"r-{index}", index, utterance, arrival_ms)
    return RequestRecord(request=request)


class TestDecodeStepper:
    @pytest.mark.parametrize("method", STEPPED_METHODS)
    def test_stepper_matches_decode(self, whisper_pair, clean_dataset, method):
        draft, target = whisper_pair
        utterance = clean_dataset[0]
        decoder = build_method(method, draft, target)
        reference = decoder.decode(utterance)

        stepper = begin_decode(decoder, utterance)
        outcomes: list[StepOutcome] = []
        while not stepper.done:
            outcomes.append(stepper.step())
        result = stepper.result
        assert result.tokens == reference.tokens
        assert result.total_ms == reference.total_ms
        assert outcomes[-1].done
        assert all(not o.done for o in outcomes[:-1])
        # step costs partition the clock total exactly
        assert sum(o.ms for o in outcomes) == pytest.approx(result.total_ms)

    def test_fallback_stepper_for_non_steppable(self, whisper_pair, clean_dataset):
        draft, target = whisper_pair
        decoder = FixedTreeDecoder(draft, target, FixedTreeConfig())
        assert not hasattr(decoder, "begin")
        utterance = clean_dataset[1]
        stepper = begin_decode(decoder, utterance)
        outcome = stepper.step()
        assert outcome.done  # whole decode in one step
        assert stepper.result.tokens == decoder.decode(utterance).tokens
        assert outcome.ms == pytest.approx(stepper.result.total_ms)

    def test_step_after_done_raises(self, whisper_pair, clean_dataset):
        draft, target = whisper_pair
        decoder = build_method("autoregressive", draft, target)
        stepper = begin_decode(decoder, clean_dataset[0])
        stepper.drain()
        with pytest.raises(RuntimeError):
            stepper.step()

    def test_result_before_done_raises(self, whisper_pair, clean_dataset):
        draft, target = whisper_pair
        decoder = build_method("spec(8,1)", draft, target)
        stepper = begin_decode(decoder, clean_dataset[0])
        with pytest.raises(RuntimeError):
            _ = stepper.result


class TestArrivals:
    def test_poisson_deterministic(self):
        a = poisson_trace(20, 2.0, 8, seed=7)
        b = poisson_trace(20, 2.0, 8, seed=7)
        assert a == b
        assert poisson_trace(20, 2.0, 8, seed=8) != a

    def test_poisson_rate_roughly_matches(self):
        trace = poisson_trace(400, 4.0, 8, seed=1)
        assert offered_qps(trace) == pytest.approx(4.0, rel=0.25)

    def test_uniform_spacing(self):
        trace = uniform_trace(5, 2.0, 3, seed=0)
        gaps = [
            b.arrival_ms - a.arrival_ms for a, b in zip(trace, trace[1:], strict=False)
        ]
        assert all(gap == pytest.approx(500.0) for gap in gaps)

    def test_trace_roundtrip(self, tmp_path):
        trace = poisson_trace(10, 1.0, 4, seed=3)
        path = save_trace(trace, tmp_path / "trace.json")
        assert load_trace(path) == trace

    def test_make_trace_validates_kind(self):
        with pytest.raises(ValueError):
            make_trace("burst", 4, 1.0, 4, 0)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            poisson_trace(4, 0.0, 4)
        with pytest.raises(ValueError):
            uniform_trace(0, 1.0, 4)


class TestAdmissionQueue:
    def test_fifo_and_peak_depth(self, clean_dataset):
        queue = AdmissionQueue(capacity=3)
        records = [_record(i, clean_dataset[0]) for i in range(3)]
        for r in records:
            assert queue.offer(r)
        assert queue.peak_depth == 3
        assert [queue.pop() for _ in range(3)] == records

    def test_overflow_rejects(self, clean_dataset):
        queue = AdmissionQueue(capacity=1)
        first, second = (_record(i, clean_dataset[0]) for i in range(2))
        assert queue.offer(first)
        assert not queue.offer(second)
        assert second.status == STATUS_REJECTED
        assert queue.rejected == 1 and queue.admitted == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)


class TestSchedulerDeterminism:
    CONFIGS = (
        SchedulerConfig(max_batch=1, max_inflight=1),  # serial FIFO corner
        SchedulerConfig(max_batch=2, max_inflight=4),
        SchedulerConfig(max_batch=4, max_inflight=8),
    )

    @pytest.fixture(scope="class")
    def trace(self, clean_dataset):
        return poisson_trace(12, 3.0, len(clean_dataset), seed=11)

    def _run(self, whisper_pair, clean_dataset, trace, config):
        draft, target = whisper_pair
        decoder = build_method("specasr-asp", draft, target)
        scheduler = ContinuousBatchScheduler(decoder, config)
        return scheduler.run(trace, clean_dataset), scheduler.last_stats

    def test_rerun_bit_identical(self, whisper_pair, clean_dataset, trace):
        config = SchedulerConfig(max_batch=3, max_inflight=6)
        a, stats_a = self._run(whisper_pair, clean_dataset, trace, config)
        b, stats_b = self._run(whisper_pair, clean_dataset, trace, config)
        assert [r.tokens for r in a] == [r.tokens for r in b]
        assert [r.finish_ms for r in a] == [r.finish_ms for r in b]
        assert [r.first_token_ms for r in a] == [r.first_token_ms for r in b]
        assert [r.decode_ms for r in a] == [r.decode_ms for r in b]
        assert stats_a == stats_b

    def test_transcripts_and_decode_ms_scheduler_independent(
        self, whisper_pair, clean_dataset, trace
    ):
        runs = [
            self._run(whisper_pair, clean_dataset, trace, config)[0]
            for config in self.CONFIGS
        ]
        reference = runs[0]
        for records in runs[1:]:
            assert [r.tokens for r in records] == [r.tokens for r in reference]
            assert [r.decode_ms for r in records] == [r.decode_ms for r in reference]

    def test_transcripts_match_offline_decode(self, whisper_pair, clean_dataset, trace):
        draft, target = whisper_pair
        decoder = build_method("specasr-asp", draft, target)
        records, _ = self._run(whisper_pair, clean_dataset, trace, SchedulerConfig())
        for record in records:
            assert record.status == STATUS_COMPLETED
            offline = decoder.decode(record.request.utterance)
            assert record.tokens == offline.tokens
            assert record.decode_ms == offline.total_ms

    def test_timeline_sanity(self, whisper_pair, clean_dataset, trace):
        records, stats = self._run(
            whisper_pair, clean_dataset, trace, SchedulerConfig()
        )
        for r in records:
            assert r.service_start_ms >= r.request.arrival_ms
            assert r.first_token_ms >= r.service_start_ms
            assert r.finish_ms >= r.first_token_ms
            assert r.queue_ms >= 0 and r.ttft_ms > 0
            assert r.ttft_ms <= r.completion_ms
        assert stats.sim_end_ms >= max(r.finish_ms for r in records)
        assert 0 < stats.device_utilisation <= 1.0

    def test_batching_reduces_completion_latency_under_load(
        self, whisper_pair, clean_dataset
    ):
        # At an offered load that saturates a serial device, co-scheduling
        # rounds must strictly reduce total completion time.
        trace = uniform_trace(10, 4.0, len(clean_dataset), seed=5)
        serial, _ = self._run(
            whisper_pair,
            clean_dataset,
            trace,
            SchedulerConfig(max_batch=1, max_inflight=1),
        )
        batched, _ = self._run(
            whisper_pair,
            clean_dataset,
            trace,
            SchedulerConfig(max_batch=4, max_inflight=8),
        )
        serial_total = sum(r.completion_ms for r in serial)
        batched_total = sum(r.completion_ms for r in batched)
        assert batched_total < serial_total


class TestBackpressure:
    def test_overload_rejects_and_reports(self, whisper_pair, clean_dataset):
        draft, target = whisper_pair
        decoder = build_method("autoregressive", draft, target)
        scheduler = ContinuousBatchScheduler(
            decoder,
            SchedulerConfig(max_batch=1, max_inflight=1, queue_capacity=2),
        )
        # Effectively simultaneous arrivals: far more than queue + device.
        trace = uniform_trace(12, 1000.0, len(clean_dataset), seed=2)
        records = scheduler.run(trace, clean_dataset)
        stats = scheduler.last_stats
        rejected = [r for r in records if r.status == STATUS_REJECTED]
        completed = [r for r in records if r.status == STATUS_COMPLETED]
        assert rejected and completed
        assert len(rejected) + len(completed) == len(records)
        assert stats.rejected == len(rejected)
        assert stats.peak_queue_depth <= 2
        for r in rejected:
            assert r.finish_ms is None and r.tokens == []

    def test_report_counts_rejections_against_goodput(self):
        config = ServeSimConfig(
            method="autoregressive",
            qps=50.0,
            num_requests=16,
            utterances=8,
            queue_capacity=2,
            max_batch=1,
            max_inflight=1,
        )
        report = simulate(config)
        assert report.rejected > 0
        assert report.goodput_ratio < 1.0
        assert report.num_requests == 16
        assert report.completed + report.rejected == 16


class TestServeReportAndSearch:
    def test_report_fields_and_render(self):
        config = ServeSimConfig(
            method="specasr-asp", qps=2.0, num_requests=12, utterances=8
        )
        report = simulate(config)
        assert report.completed == 12
        for summary in (report.completion, report.ttft, report.queue_wait):
            assert summary is not None
            assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum
        text = report.render()
        assert "p95" in text and "goodput" in text
        payload = report.to_dict()
        assert payload["latency_ms"]["completion"]["count"] == 12

    def test_simulate_is_deterministic(self):
        config = ServeSimConfig(
            method="spec(8,1)", qps=3.0, num_requests=10, utterances=8
        )
        assert simulate(config).to_dict() == simulate(config).to_dict()

    def test_speculative_sustains_more_qps_than_autoregressive(self):
        ar_qps, _ = max_sustainable_qps(
            ServeSimConfig(method="autoregressive", num_requests=16, utterances=8),
            refine_steps=2,
        )
        spec_qps, _ = max_sustainable_qps(
            ServeSimConfig(method="specasr-tsp", num_requests=16, utterances=8),
            refine_steps=2,
        )
        assert spec_qps > ar_qps

    def test_trace_replay_overrides_qps(self, tmp_path):
        config = ServeSimConfig(method="spec(8,1)", num_requests=8, utterances=8)
        trace = uniform_trace(8, 5.0, 8, seed=1)
        path = save_trace(trace, tmp_path / "t.json")
        report = simulate(config, trace=load_trace(path))
        assert report.offered_qps == pytest.approx(offered_qps(trace))
        assert report.num_requests == 8


class TestPercentiles:
    def test_percentile_interpolates(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0) == 10.0
        assert percentile(values, 100) == 40.0
        assert percentile(values, 50) == pytest.approx(25.0)

    def test_percentile_validates(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_summary_from_values(self):
        summary = PercentileSummary.from_values(float(v) for v in range(1, 101))
        assert summary.count == 100
        assert summary.p50 == pytest.approx(50.5)
        assert summary.maximum == 100.0
        assert PercentileSummary.from_values([]) is None


class TestSchedulerConfigValidation:
    def test_rejects_bad_configs(self):
        with pytest.raises(ValueError):
            SchedulerConfig(max_batch=0)
        with pytest.raises(ValueError):
            SchedulerConfig(max_batch=4, max_inflight=2)
        with pytest.raises(ValueError):
            SchedulerConfig(queue_capacity=0)
        with pytest.raises(ValueError):
            SchedulerConfig(overlap=1.5)
