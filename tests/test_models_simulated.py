"""Tests for SimulatedASRModel / DecodeSession."""

import pytest

from repro.models.latency import SimClock
from repro.models.simulated import (
    EMBEDDINGS_PER_SECOND,
    TEXT_PROMPT_TOKENS,
    DecodeSession,
)


class TestSessionLifecycle:
    def test_prefill_required_before_step(self, whisper_pair, utterance):
        _, target = whisper_pair
        session = target.session(utterance, SimClock())
        with pytest.raises(RuntimeError):
            session.step(())

    def test_double_prefill_rejected(self, whisper_pair, utterance):
        _, target = whisper_pair
        session = target.session(utterance, SimClock())
        session.prefill()
        with pytest.raises(RuntimeError):
            session.prefill()

    def test_prefill_records_events_and_kv(self, whisper_pair, utterance):
        _, target = whisper_pair
        clock = SimClock()
        session = target.session(utterance, clock)
        session.prefill()
        expected_prompt = (
            int(utterance.duration_s * EMBEDDINGS_PER_SECOND) + TEXT_PROMPT_TOKENS
        )
        assert session.prompt_tokens == expected_prompt
        assert clock.count_for_kind("prefill") == 1
        assert clock.count_for_kind("encode") == 1
        assert session.kv.length == expected_prompt


class TestStepping:
    def test_peek_is_free(self, whisper_pair, utterance):
        _, target = whisper_pair
        clock = SimClock()
        session = target.session(utterance, clock)
        session.peek(())
        assert clock.total_ms() == 0.0

    def test_step_charges_latency(self, whisper_pair, utterance):
        _, target = whisper_pair
        clock = SimClock()
        session = target.session(utterance, clock)
        session.prefill()
        before = clock.total_ms()
        session.step(())
        assert clock.total_ms() > before

    def test_step_matches_peek(self, whisper_pair, utterance):
        _, target = whisper_pair
        session = target.session(utterance, SimClock())
        session.prefill()
        assert session.step(()).token == session.peek(()).token

    def test_frontier_batch_single_event(self, whisper_pair, utterance):
        draft, _ = whisper_pair
        clock = SimClock()
        session = draft.session(utterance, clock)
        session.prefill()
        results = session.step_frontier([(), (5,)])
        assert len(results) == 2
        assert clock.count_for_kind("draft") == 1
        assert clock.tokens_for_kind("draft") == 2

    def test_frontier_batch_cheaper_than_two_steps(self, whisper_pair, utterance):
        draft, _ = whisper_pair
        clock_a = SimClock()
        session_a = draft.session(utterance, clock_a)
        session_a.prefill()
        session_a.step_frontier([(), (5,)])
        batched = clock_a.total_for_kind("draft")

        clock_b = SimClock()
        session_b = draft.session(utterance, clock_b)
        session_b.prefill()
        session_b.step((), kind="draft")
        session_b.step((5,), kind="draft")
        sequential = clock_b.total_for_kind("draft")
        assert batched < sequential

    def test_empty_frontier_rejected(self, whisper_pair, utterance):
        draft, _ = whisper_pair
        session = draft.session(utterance, SimClock())
        session.prefill()
        with pytest.raises(ValueError):
            session.step_frontier([])

    def test_verify_eval_billing(self, whisper_pair, utterance):
        _, target = whisper_pair
        clock = SimClock()
        session = target.session(utterance, clock)
        session.prefill()
        prefixes = [(), (1,), (1, 2)]
        results = session.verify_eval(prefixes, billed_tokens=2)
        assert len(results) == 3
        assert clock.tokens_for_kind("verify") == 2

    def test_rollback_shrinks_kv(self, whisper_pair, utterance):
        _, target = whisper_pair
        session = target.session(utterance, SimClock())
        session.prefill()
        session.step(())
        session.step((1,))
        before = session.kv.length
        session.rollback(0)
        assert session.kv.length < before


class TestAudioAnchoring:
    def test_greedy_decode_is_anchored(self, whisper_pair, utterance):
        """Following the model's own outputs never triggers perturbation."""
        _, target = whisper_pair
        session = target.session(utterance, SimClock())
        prefix: list[int] = []
        for _ in range(utterance.num_tokens):
            result = session.peek(prefix)
            assert result.perturb_level == 0
            prefix.append(result.token)

    def test_divergence_perturbs_then_reanchors(
        self, whisper_pair, clean_dataset, vocab
    ):
        """Injecting a wrong token perturbs the next steps, after which the
        model re-anchors to its greedy stream — the audio-conditioning
        property the paper's recycling strategy relies on."""
        draft, _ = whisper_pair
        utterance = clean_dataset[2]
        session = draft.session(utterance, SimClock())
        greedy = draft.oracle(utterance).greedy_stream()
        window = draft.oracle_params.perturb_window
        # Take the greedy prefix of length 3, then swap in a wrong token.
        prefix = tuple(greedy[:3])
        wrong = prefix[:-1] + (prefix[-1] + 1,)
        assert session.perturb_state(wrong) == window
        # Extend along whatever the model now produces: the level decays.
        current = wrong
        for _ in range(window):
            token = session.peek(current).token
            current = current + (token,)
        assert session.perturb_state(current) == 0
        # Re-anchored: next token equals the greedy stream at that position.
        assert session.peek(current).token == greedy[len(current)]

    def test_transcript_helper_strips_eos(self, whisper_pair, utterance, vocab):
        _, target = whisper_pair
        transcript = target.greedy_transcript(utterance)
        assert vocab.eos_id not in transcript

    def test_session_is_decode_session(self, whisper_pair, utterance):
        _, target = whisper_pair
        assert isinstance(target.session(utterance, SimClock()), DecodeSession)
