"""Memory-aware serving suite: paged KV allocator, parity, config surface.

The contract under test, from the memory-as-a-scheduling-constraint change:

* **Allocator invariants (hypothesis)** — for any interleaving of
  admissions, commits, failures and releases: a device's used blocks never
  exceed its capacity, the pool ledger always equals the sum of holdings
  (block conservation, ``audit()``), eviction never touches a session with
  a copy executing, and a fully drained allocator holds zero blocks.
* **Parity contract** — with ample capacity, a memory-enabled run is
  bit-identical to the memory-disabled scheduler across router policies
  and device counts: same transcripts, same timings, same stats, no
  evictions/stalls/penalties.
* **Constrained capacity** — conservation (completed + rejected + shed ==
  arrived) holds under pressure, transcripts of completed requests stay
  scheduler-independent, and an impossible demand sheds ``"memory"``.
* **Config surface** — the composed ``ServeSimConfig`` keeps the seed-era
  flat kwargs, ``dataclasses.replace`` and legacy pickles working, and the
  ``@BLOCKS`` device-spec suffix round-trips.
"""

from __future__ import annotations

import pickle
import warnings
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.methods import build_method
from repro.serving import (
    ChaosSpec,
    ClusterConfig,
    ClusterKVMemory,
    ClusterSpec,
    ContinuousBatchScheduler,
    KVCacheTracker,
    MemorySpec,
    SchedulerConfig,
    ServeSimConfig,
    format_device_specs,
    parse_device_specs,
    poisson_trace,
    simulate,
)
from repro.serving.request import (
    SHED_MEMORY,
    STATUS_COMPLETED,
    STATUS_REJECTED,
    STATUS_SHED,
)

STABLE = settings(max_examples=40, deadline=None, derandomize=True)

MODELS = ("draft-m", "target-m")


# ---------------------------------------------------------------------------
# MemorySpec / KVCacheTracker basics
# ---------------------------------------------------------------------------


class TestMemorySpec:
    def test_defaults_disabled(self):
        spec = MemorySpec()
        assert not spec.enabled
        assert spec.block_size == 16
        assert spec.prefix_sharing

    def test_blocks_for(self):
        spec = MemorySpec(block_size=16)
        assert spec.blocks_for(0) == 0
        assert spec.blocks_for(-3) == 0
        assert spec.blocks_for(1) == 1
        assert spec.blocks_for(16) == 1
        assert spec.blocks_for(17) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MemorySpec(device_blocks=0)
        with pytest.raises(ValueError):
            MemorySpec(block_size=0)
        with pytest.raises(ValueError):
            MemorySpec(reprefill_ms_per_block=-1.0)


class TestKVCacheTracker:
    def test_prefill_and_context(self):
        kv = KVCacheTracker()
        kv.prefill(10)
        assert kv.prompt_length == 10
        assert kv.length == 10
        assert kv.context_length(0) == 10
        assert kv.context_length(5) == 15

    def test_rollback_frees(self):
        kv = KVCacheTracker()
        kv.prefill(4)
        kv.append(8)
        kv.rollback_to(6)
        assert kv.length == 6
        assert kv.peak == 12
        assert kv.rolled_back_total == 6
        assert kv.rollback_events == 1
        assert kv.waste_ratio == pytest.approx(6 / 12)

    def test_no_unbounded_history(self):
        kv = KVCacheTracker()
        assert not hasattr(kv, "_history")

    def test_deprecation_shim(self):
        import importlib
        import sys

        sys.modules.pop("repro.models.kv_cache", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = importlib.import_module("repro.models.kv_cache")
        assert any(w.category is DeprecationWarning for w in caught)
        assert legacy.KVCacheTracker is KVCacheTracker

    def test_models_package_lazy_export(self):
        import repro.models

        assert repro.models.KVCacheTracker is KVCacheTracker
        with pytest.raises(AttributeError):
            repro.models.not_a_real_name


# ---------------------------------------------------------------------------
# Allocator property suite (hypothesis)
# ---------------------------------------------------------------------------


class _AllocatorHarness:
    """Interprets an op tape against ClusterKVMemory + a mirror of copies."""

    def __init__(self, capacities, spec):
        self.memory = ClusterKVMemory(spec, capacities)
        self.spec = spec
        self.devices = len(capacities)
        # (request, model) -> list of (device, peak_tokens) outstanding copies
        self.outstanding: dict[tuple[int, str], list[tuple[int, int]]] = {}
        self.committed: dict[tuple[int, str], int] = {}

    def busy_snapshot(self):
        """Holdings of every session with a copy executing somewhere."""
        busy = {
            request
            for (request, _m), hmap in self.memory._holdings.items()
            for holding in hmap.values()
            if holding.inflight > 0
        }
        return {
            key: {dev: (h.shared, h.private) for dev, h in hmap.items()}
            for key, hmap in self.memory._holdings.items()
            if key[0] in busy
        }

    def check(self):
        self.memory.audit()
        for pool in self.memory.pools:
            if pool.capacity is not None:
                assert pool.used <= pool.capacity

    def admit(self, request, model, device, peak):
        key = (request, model)
        resident = self.committed.get(key, 0)
        peak = max(peak, resident)
        before = self.busy_snapshot()
        grant = self.memory.admit(
            device, request, model, f"utt-{request % 3}", peak, resident
        )
        # Eviction (inside admit) must never have touched a running session.
        after_holdings = self.memory._holdings
        for key_b, devmap in before.items():
            if key_b[0] == request:
                continue  # the admitted request may migrate its own blocks
            assert key_b in after_holdings
            for dev, shape in devmap.items():
                holding = after_holdings[key_b].get(dev)
                assert holding is not None, "eviction touched a running session"
                assert (holding.shared, holding.private) == shape
        if grant is not None:
            assert grant >= 0.0
            self.outstanding.setdefault(key, []).append((device, peak))
        self.check()

    def settle(self, request, model, commit, accepted):
        key = (request, model)
        copies = self.outstanding.get(key)
        if not copies:
            return
        device, peak = copies.pop()
        if commit:
            resident = self.committed.get(key, 0)
            # Commit may grow residency up to the billed peak plus the one
            # reserved growth block position (the verify bonus token).
            resident = min(resident + accepted, peak + 1)
            self.committed[key] = resident
            self.memory.settle(
                device, request, model, f"utt-{request % 3}", resident, committed=True
            )
        else:
            self.memory.settle(
                device, request, model, f"utt-{request % 3}", 0, committed=False
            )
        self.check()

    def release(self, request):
        if any(copies for (r, _m), copies in self.outstanding.items() if r == request):
            return  # scheduler never releases a request with copies in flight
        self.memory.release_request(request)
        for model in MODELS:
            self.committed.pop((request, model), None)
        self.check()

    def drain(self):
        for (request, model), copies in list(self.outstanding.items()):
            while copies:
                self.settle(request, model, commit=False, accepted=0)
        for request in range(8):
            self.memory.release_request(request)
        self.check()
        assert all(used == 0 for used in self.memory.used_blocks())


ops = st.lists(
    st.tuples(
        st.sampled_from(["admit", "commit", "fail", "release"]),
        st.integers(min_value=0, max_value=5),  # request
        st.integers(min_value=0, max_value=1),  # model index
        st.integers(min_value=0, max_value=2),  # device
        st.integers(min_value=1, max_value=90),  # peak tokens
    ),
    min_size=1,
    max_size=60,
)


class TestAllocatorProperties:
    @given(
        tape=ops,
        capacity=st.integers(min_value=2, max_value=12),
        block_size=st.sampled_from([4, 16]),
        sharing=st.booleans(),
    )
    @STABLE
    def test_conservation_capacity_and_running_sessions(
        self, tape, capacity, block_size, sharing
    ):
        spec = MemorySpec(
            device_blocks=capacity, block_size=block_size, prefix_sharing=sharing
        )
        harness = _AllocatorHarness([capacity, capacity, None], spec)
        for op, request, model_idx, device, peak in tape:
            model = MODELS[model_idx]
            if op == "admit":
                harness.admit(request, model, device, peak)
            elif op == "commit":
                harness.settle(request, model, commit=True, accepted=peak // 4)
            elif op == "fail":
                harness.settle(request, model, commit=False, accepted=0)
            else:
                harness.release(request)
        harness.drain()

    @given(tape=ops)
    @STABLE
    def test_unbounded_pools_never_stall(self, tape):
        spec = MemorySpec(device_blocks=8)  # spec default irrelevant: None caps
        harness = _AllocatorHarness([None, None, None], spec)
        for op, request, model_idx, device, peak in tape:
            model = MODELS[model_idx]
            if op == "admit":
                harness.admit(request, model, device, peak)
            elif op == "commit":
                harness.settle(request, model, commit=True, accepted=peak // 4)
            elif op == "fail":
                harness.settle(request, model, commit=False, accepted=0)
            else:
                harness.release(request)
        assert harness.memory.stalls == 0
        assert harness.memory.evictions == 0
        harness.drain()


class TestAllocatorUnit:
    def test_prefix_sharing_dedupes_physical_blocks(self):
        spec = MemorySpec(device_blocks=64, block_size=4)
        memory = ClusterKVMemory(spec, [64])
        # Request 0 decodes and commits 16 tokens of prompt "utt".
        assert memory.admit(0, 0, "m", "utt", 16, 0) == 0.0
        memory.settle(0, 0, "m", "utt", 16, committed=True)
        used_solo = memory.used_blocks()[0]
        # Request 1, same prompt: its committed prefix rides the shared
        # blocks, costing only private scratch.
        assert memory.admit(0, 1, "m", "utt", 16, 0) == 0.0
        memory.settle(0, 1, "m", "utt", 16, committed=True)
        assert memory.reuse_hits > 0
        assert memory.used_blocks()[0] < 2 * used_solo
        memory.audit()

    def test_no_sharing_means_no_reuse(self):
        spec = MemorySpec(device_blocks=64, block_size=4, prefix_sharing=False)
        memory = ClusterKVMemory(spec, [64])
        memory.admit(0, 0, "m", "utt", 16, 0)
        memory.settle(0, 0, "m", "utt", 16, committed=True)
        memory.admit(0, 1, "m", "utt", 16, 0)
        memory.settle(0, 1, "m", "utt", 16, committed=True)
        assert memory.reuse_hits == 0

    def test_eviction_marks_and_reprefill_penalty(self):
        spec = MemorySpec(device_blocks=6, block_size=4, reprefill_ms_per_block=2.0)
        memory = ClusterKVMemory(spec, [6])
        assert memory.admit(0, 0, "m", "a", 12, 0) == 0.0
        memory.settle(0, 0, "m", "a", 12, committed=True)  # 3 blocks resident
        # Request 1 needs the space; request 0 is idle -> evicted.
        assert memory.admit(0, 1, "m", "b", 12, 0) == 0.0
        assert memory.evictions == 1
        assert memory.evicted_blocks >= 3
        memory.settle(0, 1, "m", "b", 12, committed=True)
        memory.release_request(1)
        # Request 0 resumes: pays the re-prefill for its 3 resident blocks.
        penalty = memory.admit(0, 0, "m", "a", 12, 12)
        assert penalty == pytest.approx(2.0 * 3)
        assert memory.reprefill_ms == pytest.approx(penalty)
        memory.audit()

    def test_running_session_never_evicted_even_under_pressure(self):
        spec = MemorySpec(device_blocks=4, block_size=4)
        memory = ClusterKVMemory(spec, [4])
        assert memory.admit(0, 0, "m", "a", 8, 0) == 0.0  # in flight, 3 blocks
        # Request 1 cannot fit: the only resident session is running.
        assert memory.admit(0, 1, "m", "b", 8, 0) is None
        assert memory.stalls == 1
        assert memory.evictions == 0
        memory.settle(0, 0, "m", "a", 0, committed=False)
        memory.audit()

    def test_fits_anywhere(self):
        memory = ClusterKVMemory(MemorySpec(device_blocks=4), [4, None])
        assert memory.fits_anywhere(3, [0])
        assert not memory.fits_anywhere(9, [0])
        assert memory.fits_anywhere(9, [0, 1])  # unbounded device


# ---------------------------------------------------------------------------
# Scheduler integration: parity + pressure
# ---------------------------------------------------------------------------

PARITY_CLUSTERS = (
    ClusterConfig(devices=1, router="colocated"),
    ClusterConfig(devices=2, router="colocated"),
    ClusterConfig(devices=2, router="disaggregated"),
    ClusterConfig(devices=3, router="merged"),
    ClusterConfig(devices=4, router="disaggregated", split="balanced"),
)


def _cluster_id(config: ClusterConfig) -> str:
    return f"{config.devices}x-{config.router}-{config.split}"


def _signature(records):
    return [
        (
            r.status,
            r.shed_reason,
            tuple(r.tokens),
            r.service_start_ms,
            r.first_token_ms,
            r.finish_ms,
            r.decode_ms,
        )
        for r in records
    ]


class TestSchedulerMemory:
    @pytest.fixture(scope="class")
    def decoder(self, whisper_pair):
        draft, target = whisper_pair
        return build_method("specasr-asp", draft, target)

    @pytest.fixture(scope="class")
    def trace(self, clean_dataset):
        return poisson_trace(16, 8.0, len(clean_dataset), seed=11)

    def _run(self, decoder, dataset, trace, cluster, memory=None, **knobs):
        scheduler = ContinuousBatchScheduler(
            decoder,
            SchedulerConfig(**knobs),
            cluster,
            memory=memory,
        )
        records = scheduler.run(trace, dataset)
        return records, scheduler.last_stats

    @pytest.mark.parametrize("cluster", PARITY_CLUSTERS, ids=_cluster_id)
    def test_ample_capacity_parity(self, decoder, clean_dataset, trace, cluster):
        base, base_stats = self._run(decoder, clean_dataset, trace, cluster)
        ample, stats = self._run(
            decoder,
            clean_dataset,
            trace,
            cluster,
            memory=MemorySpec(device_blocks=1_000_000),
        )
        assert _signature(ample) == _signature(base)
        assert stats.evictions == 0
        assert stats.memory_stalls == 0
        assert stats.reprefill_ms == 0.0
        assert stats.block_size == MemorySpec().block_size
        # Time-domain stats identical; only the memory counters differ.
        assert stats.sim_end_ms == base_stats.sim_end_ms
        assert stats.per_device_busy_ms == base_stats.per_device_busy_ms
        assert max(stats.peak_memory_blocks) > 0

    def test_constrained_conservation_and_transcripts(
        self, decoder, clean_dataset, trace
    ):
        cluster = ClusterConfig(devices=2, router="colocated")
        base, _ = self._run(decoder, clean_dataset, trace, cluster)
        tight, stats = self._run(
            decoder,
            clean_dataset,
            trace,
            cluster,
            memory=MemorySpec(device_blocks=12),
        )
        statuses = [r.status for r in tight]
        assert (
            statuses.count(STATUS_COMPLETED)
            + statuses.count(STATUS_REJECTED)
            + statuses.count(STATUS_SHED)
            == len(trace)
        )
        assert stats.evictions > 0 or stats.memory_stalls > 0
        assert max(stats.peak_memory_blocks) <= 12
        reference = {
            r.request.index: tuple(r.tokens)
            for r in base
            if r.status == STATUS_COMPLETED
        }
        for r in tight:
            if r.status == STATUS_COMPLETED and r.request.index in reference:
                assert tuple(r.tokens) == reference[r.request.index]

    def test_batch_size_emerges_from_free_blocks(self, decoder, clean_dataset, trace):
        cluster = ClusterConfig(devices=1, router="colocated")
        _, wide = self._run(
            decoder,
            clean_dataset,
            trace,
            cluster,
            memory=MemorySpec(device_blocks=1_000_000),
            max_batch=8,
            max_inflight=16,
        )
        _, narrow = self._run(
            decoder,
            clean_dataset,
            trace,
            cluster,
            memory=MemorySpec(device_blocks=24),
            max_batch=8,
            max_inflight=16,
        )
        assert narrow.mean_batch_occupancy < wide.mean_batch_occupancy

    def test_impossible_demand_sheds_memory(self, decoder, clean_dataset, trace):
        records, stats = self._run(
            decoder,
            clean_dataset,
            trace,
            ClusterConfig(devices=1, router="colocated"),
            memory=MemorySpec(device_blocks=1, block_size=1),
        )
        shed = [r for r in records if r.status == STATUS_SHED]
        assert shed
        assert all(r.shed_reason == SHED_MEMORY for r in shed)

    def test_device_spec_blocks_override(self, decoder, clean_dataset, trace):
        cluster = ClusterConfig(device_specs=parse_device_specs("1.0@64,1.0@32"))
        _, stats = self._run(decoder, clean_dataset, trace, cluster)
        assert stats.memory_blocks == (64, 32)
        assert all(
            peak <= cap
            for peak, cap in zip(stats.peak_memory_blocks, (64, 32), strict=True)
        )

    def test_prefix_sharing_reduces_peak(self, decoder, clean_dataset):
        # Every request decodes the same utterance: maximal shareable prefix.
        trace = poisson_trace(12, 20.0, 1, seed=5)
        cluster = ClusterConfig(devices=1, router="colocated")
        _, shared = self._run(
            decoder,
            clean_dataset,
            trace,
            cluster,
            memory=MemorySpec(device_blocks=1_000_000, prefix_sharing=True),
        )
        _, unshared = self._run(
            decoder,
            clean_dataset,
            trace,
            cluster,
            memory=MemorySpec(device_blocks=1_000_000, prefix_sharing=False),
        )
        assert shared.prefix_reuse_hits > 0
        assert unshared.prefix_reuse_hits == 0
        assert max(shared.peak_memory_blocks) <= max(unshared.peak_memory_blocks)


# ---------------------------------------------------------------------------
# Config surface: composed sub-configs, legacy compat, @BLOCKS grammar
# ---------------------------------------------------------------------------


class TestConfigSurface:
    def test_flat_kwargs_fold_into_subconfigs(self):
        config = ServeSimConfig(
            devices=4,
            router="disaggregated",
            faults="crash@100:dev0",
            straggler_k=2.0,
            memory_blocks=64,
            block_size=8,
        )
        assert config.cluster == ClusterSpec(devices=4, router="disaggregated")
        assert config.chaos.faults == "crash@100:dev0"
        assert config.chaos.straggler_k == 2.0
        assert config.memory == MemorySpec(device_blocks=64, block_size=8)
        # Flat read surface mirrors the sub-configs.
        assert config.devices == 4
        assert config.router == "disaggregated"
        assert config.memory_blocks == 64
        assert config.block_size == 8

    def test_subconfig_and_flat_equivalent(self):
        flat = ServeSimConfig(devices=2, faults="perr:0.1", memory_blocks=32)
        composed = ServeSimConfig(
            cluster=ClusterSpec(devices=2),
            chaos=ChaosSpec(faults="perr:0.1"),
            memory=MemorySpec(device_blocks=32),
        )
        assert flat == composed
        assert hash(flat) == hash(composed)

    def test_flat_override_on_top_of_subconfig(self):
        config = ServeSimConfig(
            cluster=ClusterSpec(devices=4, router="merged"), pool_split="balanced"
        )
        assert config.devices == 4
        assert config.router == "merged"
        assert config.pool_split == "balanced"

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            ServeSimConfig(bogus=1)

    def test_replace_with_flat_and_field_names(self):
        config = ServeSimConfig(devices=4, router="disaggregated", memory_blocks=64)
        assert replace(config, qps=9.0).qps == 9.0
        bumped = replace(config, devices=2)
        assert bumped.devices == 2
        assert bumped.router == "disaggregated"  # sibling fields preserved
        assert bumped.memory_blocks == 64
        assert config.with_qps(3.0).memory_blocks == 64

    def test_pickle_roundtrip(self):
        config = ServeSimConfig(devices=3, faults="perr:0.05", memory_blocks=16)
        assert pickle.loads(pickle.dumps(config)) == config

    def test_legacy_flat_pickle_state_upgrades(self):
        state = {
            "method": "specasr-asp",
            "pairing": "whisper",
            "qps": 2.0,
            "num_requests": 48,
            "seed": 2025,
            "utterances": 32,
            "split": "test-clean",
            "arrival": "poisson",
            "deadline_ms": 3000.0,
            "max_batch": 4,
            "max_inflight": 8,
            "queue_capacity": 32,
            "overlap": 0.8,
            "devices": 3,
            "router": "merged",
            "pool_split": "fixed",
            "device_spec": "",
            "faults": "",
            "fault_seed": 0,
            "max_retries": 3,
            "retry_backoff_ms": 25.0,
            "straggler_k": 0.0,
            "admission_deadline_ms": None,
            "batch_deadline_ms": None,
            "batch_fraction": 0.0,
        }
        config = ServeSimConfig.__new__(ServeSimConfig)
        config.__setstate__(state)
        assert config == ServeSimConfig(devices=3, router="merged")
        assert config.memory == MemorySpec()

    def test_memory_spec_accessor(self):
        assert ServeSimConfig().memory_spec() == MemorySpec()
        assert ServeSimConfig(memory_blocks=8).memory_spec().device_blocks == 8

    def test_simulate_reports_memory(self):
        config = ServeSimConfig(
            num_requests=6, utterances=4, qps=4.0, memory_blocks=4096
        )
        report = simulate(config)
        payload = report.to_dict()
        assert payload["memory"]["device_blocks"] == [4096]
        assert payload["memory"]["block_size"] == 16
        assert max(payload["memory"]["peak_blocks"]) > 0
        assert "memory" in report.render()
        assert all("peak_blocks" in row for row in payload["per_device"])

    def test_simulate_without_memory_omits_block(self):
        report = simulate(ServeSimConfig(num_requests=4, utterances=4, qps=4.0))
        assert "memory" not in report.to_dict()


class TestDeviceSpecBlocksGrammar:
    def test_parse_blocks_suffix(self):
        specs = parse_device_specs("2x1.0@64,0.5")
        assert [s.speed for s in specs] == [1.0, 1.0, 0.5]
        assert [s.memory_blocks for s in specs] == [64, 64, None]

    def test_format_round_trip(self):
        text = "2x1.0@64,1x0.5"
        specs = parse_device_specs(text)
        assert parse_device_specs(format_device_specs(specs)) == specs

    def test_bad_blocks_rejected(self):
        with pytest.raises(ValueError, match="integer block count"):
            parse_device_specs("1.0@fast")
        with pytest.raises(ValueError, match=">= 1"):
            parse_device_specs("1.0@0")
