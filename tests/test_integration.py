"""End-to-end integration tests across subsystems."""

from repro.audio.difficulty import measure_difficulty
from repro.audio.encoder import AudioEncoder, encoder_preset
from repro.audio.features import LogMelConfig, log_mel_spectrogram
from repro.audio.signal import synthesize_utterance
from repro.core.config import full_specasr
from repro.core.engine import SpecASREngine
from repro.data.corpus import Utterance
from repro.decoding.autoregressive import AutoregressiveDecoder
from repro.metrics.wer import wer
from repro.models.registry import model_pair


class TestAudioToDecodePipeline:
    """The full substrate chain: text → waveform → features → encoder →
    measured difficulty → simulated recognition → speculative decoding."""

    def test_full_pipeline(self, vocab, clean_dataset):
        source = clean_dataset[0]
        # 1. synthesise audio for the utterance
        audio = synthesize_utterance(source)
        # 2. extract features and run the toy encoder
        features = log_mel_spectrogram(audio.waveform, LogMelConfig())
        embeddings = AudioEncoder(encoder_preset("tiny")).encode(features)
        assert embeddings.shape[0] > 0
        # 3. measure difficulty back from the waveform and rebuild the
        #    utterance on the *measured* profile
        measured = measure_difficulty(audio)
        rebuilt = Utterance(
            utterance_id=source.utterance_id + "/measured",
            speaker_id=source.speaker_id,
            words=source.words,
            tokens=source.tokens,
            duration_s=source.duration_s,
            difficulty=tuple(measured),
            split=source.split,
        )
        # 4. decode with SpecASR on the measured-difficulty utterance
        draft, target = model_pair("whisper", vocab)
        engine = SpecASREngine(draft, target, full_specasr())
        ar = AutoregressiveDecoder(target)
        assert engine.decode(rebuilt).tokens == ar.decode(rebuilt).tokens

    def test_recognition_quality_tracks_audio_noise(self, vocab, clean_dataset):
        """More waveform noise (higher difficulty profile) worsens WER."""
        source = clean_dataset[1]
        draft, _ = model_pair("whisper", vocab)

        def wer_with_difficulty(level):
            utt = Utterance(
                utterance_id=f"{source.utterance_id}/d{level}",
                speaker_id=source.speaker_id,
                words=source.words,
                tokens=source.tokens,
                duration_s=source.duration_s,
                difficulty=tuple([level] * source.num_tokens),
                split=source.split,
            )
            return wer(list(utt.tokens), draft.greedy_transcript(utt))

        assert wer_with_difficulty(0.9) > wer_with_difficulty(0.05)


class TestCrossMethodConsistency:
    def test_all_methods_identical_transcripts(self, whisper_pair, clean_dataset):
        from repro.harness.methods import standard_methods

        draft, target = whisper_pair
        methods = standard_methods(draft, target)
        for utterance in list(clean_dataset)[:2]:
            outputs = {
                name: decoder.decode(utterance).tokens
                for name, decoder in methods.items()
            }
            reference = outputs["autoregressive"]
            for name, tokens in outputs.items():
                assert tokens == reference, name

    def test_specasr_never_slower_than_ar(self, vicuna_pair, clean_dataset):
        draft, target = vicuna_pair
        engine = SpecASREngine(draft, target, full_specasr())
        ar = AutoregressiveDecoder(target)
        for utterance in list(clean_dataset)[:3]:
            assert (engine.decode(utterance).total_ms < ar.decode(utterance).total_ms)
