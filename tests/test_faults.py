"""Chaos suite: fault plans, failure-aware scheduling, graceful degradation.

The contracts under test, in rough order of appearance:

* **Grammar** — ``parse_fault_spec`` and ``format_fault_plan`` round-trip,
  and malformed specs fail with actionable messages.
* **Fault math** — per-device profiles answer dead/stalled/slowed queries
  consistently, and :class:`~repro.serving.devices.Device` bills aborted
  batches as wasted work.
* **Recovery** — a crash + warm restart mid-run requeues the aborted
  phases and every surviving request's transcript stays bit-identical to
  the fault-free run (the stepper only advances on commit).
* **Degradation** — retry exhaustion, permanent capacity loss, admission
  deadlines, displacement and preemption all shed *explicitly*, keeping
  the conservation invariant ``completed + rejected + shed == arrived``.
* **Determinism** — the same seed + plan reproduces identical reports
  across reruns and across executor worker pools (satellite: requeue
  determinism).
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.decoding.base import PHASE_DRAFT, PhaseOutcome
from repro.harness.executor import CorpusExecutor
from repro.harness.methods import build_method
from repro.serving import (
    ClusterConfig,
    ContinuousBatchScheduler,
    Device,
    DeviceCrash,
    DeviceFaultProfile,
    DeviceSlowdown,
    DeviceStall,
    FaultPlan,
    PhaseErrorRate,
    RetryPolicy,
    SchedulerConfig,
    ScheduleStats,
    ServeSimConfig,
    format_fault_plan,
    parse_fault_spec,
    simulate,
    sweep_qps,
)
from repro.serving.arrivals import Arrival, make_trace
from repro.serving.faults import HEALTHY_PROFILE
from repro.serving.queue import AdmissionQueue
from repro.serving.request import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    SHED_CAPACITY,
    SHED_DEADLINE,
    SHED_RETRIES,
    STATUS_COMPLETED,
    STATUS_REJECTED,
    STATUS_SHED,
    RequestRecord,
    ServeRequest,
)

TERMINAL = (STATUS_COMPLETED, STATUS_REJECTED, STATUS_SHED)


class TestFaultSpecGrammar:
    def test_round_trip_every_kind(self):
        spec = (
            "crash@2000:dev3:restart=1500;stall@1000+500:dev0;"
            "slow:dev2:x0.5;slow@3000+2000:dev1:x0.25;perr:0.02"
        )
        plan = parse_fault_spec(spec, seed=7)
        assert format_fault_plan(plan) == spec
        assert plan.describe() == spec
        assert parse_fault_spec(format_fault_plan(plan), seed=7) == plan

    def test_empty_spec_is_fault_free(self):
        plan = parse_fault_spec("  ;  ; ")
        assert not plan
        assert plan.events == ()
        assert plan.phase_error_rate == 0.0
        assert plan.wakeup_times() == ()

    def test_bare_device_index_accepted(self):
        plan = parse_fault_spec("crash@100:2")
        assert plan.events == (DeviceCrash(device=2, at_ms=100.0),)

    def test_permanent_crash_has_no_restart(self):
        (crash,) = parse_fault_spec("crash@50:dev0").events
        assert crash.restart_ms is None
        (warm,) = parse_fault_spec("crash@50:dev0:restart=25").events
        assert warm.restart_ms == 75.0

    @pytest.mark.parametrize(
        "bad, fragment",
        [
            ("crash@100", "crash@TIME:devI"),
            ("crash:dev0", "crash@TIME:devI"),
            ("crash@100:dev0:reboot=5", "restart=MS"),
            ("crash@oops:dev0", "crash time"),
            ("stall@100:dev0", "stall@TIME+DURATION:devI"),
            ("stall@100+50", "stall@TIME+DURATION:devI"),
            ("slow:dev0", "xFACTOR"),
            ("slow:dev0:0.5", "xFACTOR"),
            ("slow@100:dev0:x0.5", "TIME+DURATION"),
            ("perr", "perr:RATE"),
            ("perr@100:0.5", "perr:RATE"),
            ("fries:dev0", "unknown fault kind"),
            ("crash@100:devX", "device reference"),
            ("crash@100:dev-1", "device index must be >= 0"),
        ],
    )
    def test_malformed_specs_fail_with_context(self, bad, fragment):
        with pytest.raises(ValueError) as err:
            parse_fault_spec(bad)
        assert fragment in str(err.value)

    def test_event_validation(self):
        with pytest.raises(ValueError, match="crash time"):
            DeviceCrash(device=0, at_ms=-1.0)
        with pytest.raises(ValueError, match="restart delay"):
            DeviceCrash(device=0, at_ms=1.0, restart_delay_ms=0.0)
        with pytest.raises(ValueError, match="stall duration"):
            DeviceStall(device=0, at_ms=0.0, duration_ms=0.0)
        with pytest.raises(ValueError, match="slowdown factor"):
            DeviceSlowdown(device=0, factor=0.0)
        with pytest.raises(ValueError, match="rate"):
            PhaseErrorRate(rate=1.0)

    def test_one_crash_per_device(self):
        with pytest.raises(ValueError, match="more than one crash"):
            parse_fault_spec("crash@100:dev0;crash@200:dev0")

    def test_validate_for_cluster_size(self):
        plan = parse_fault_spec("crash@100:dev3")
        plan.validate_for(4)
        with pytest.raises(ValueError, match="dev0..dev1"):
            plan.validate_for(2)


class TestFaultPlanViews:
    def test_profiles_slice_per_device(self):
        plan = parse_fault_spec(
            "crash@100:dev1:restart=50;stall@10+5:dev0;slow:dev0:x0.5"
        )
        healthy, crashed = plan.profiles(2)[0], plan.profiles(2)[1]
        assert healthy.crash_ms is None
        assert healthy.stalls == ((10.0, 15.0),)
        assert healthy.slowdowns == ((0.0, math.inf, 0.5),)
        assert crashed.crash_ms == 100.0 and crashed.restart_ms == 150.0

    def test_wakeup_and_membership_times(self):
        plan = parse_fault_spec(
            "crash@100:dev0:restart=50;stall@10+5:dev1;slow@20+30:dev1:x0.5"
        )
        assert plan.wakeup_times() == (10.0, 15.0, 20.0, 50.0, 100.0, 150.0)
        assert plan.membership_times() == (100.0, 150.0)
        # an unbounded slowdown contributes only its start
        assert parse_fault_spec("slow:dev0:x0.5").wakeup_times() == (0.0,)

    def test_phase_error_rates_combine_independently(self):
        plan = parse_fault_spec("perr:0.5;perr:0.5")
        assert plan.phase_error_rate == pytest.approx(0.75)

    def test_phase_fails_is_deterministic_per_attempt(self):
        plan = parse_fault_spec("perr:0.4", seed=11)
        verdicts = [plan.phase_fails(3, 5, attempt) for attempt in range(1, 30)]
        assert verdicts == [
            plan.phase_fails(3, 5, attempt) for attempt in range(1, 30)
        ]
        assert any(verdicts) and not all(verdicts)
        # a different seed reshuffles the verdicts
        other = parse_fault_spec("perr:0.4", seed=12)
        assert verdicts != [
            other.phase_fails(3, 5, attempt) for attempt in range(1, 30)
        ]

    def test_degraded_ms_merges_overlapping_windows(self):
        plan = parse_fault_spec(
            "stall@100+200:dev0;stall@200+300:dev1;crash@1000:dev0:restart=500"
        )
        # [100,500) merged from the stalls, [1000,1500) from the crash
        assert plan.degraded_ms(2, 2000.0) == pytest.approx(900.0)
        # the horizon clips the crash window
        assert plan.degraded_ms(2, 1200.0) == pytest.approx(600.0)
        assert plan.degraded_ms(2, 0.0) == 0.0
        assert FaultPlan().degraded_ms(2, 1000.0) == 0.0
        # a permanent crash degrades until the horizon
        forever = parse_fault_spec("crash@500:dev0")
        assert forever.degraded_ms(1, 2000.0) == pytest.approx(1500.0)


class TestDeviceFaultProfile:
    def test_dead_window_and_warm_restart(self):
        profile = DeviceFaultProfile(crash_ms=100.0, restart_ms=150.0)
        assert not profile.is_dead(99.0)
        assert profile.is_dead(100.0) and profile.is_dead(149.0)
        assert not profile.is_dead(150.0)  # back at the restart instant
        permanent = DeviceFaultProfile(crash_ms=100.0)
        assert permanent.is_dead(1e9)

    def test_stall_gates_availability_not_death(self):
        profile = DeviceFaultProfile(stalls=((10.0, 20.0),))
        assert profile.is_stalled(10.0) and not profile.is_stalled(20.0)
        assert not profile.is_dead(15.0)
        assert not profile.available(15.0) and profile.available(20.0)

    def test_slowdown_factors_stack(self):
        profile = DeviceFaultProfile(
            slowdowns=((0.0, 100.0, 0.5), (50.0, 100.0, 0.5))
        )
        assert profile.speed_factor(25.0) == pytest.approx(0.5)
        assert profile.speed_factor(75.0) == pytest.approx(0.25)
        assert profile.speed_factor(100.0) == 1.0

    def test_crash_during_is_strictly_interior(self):
        profile = DeviceFaultProfile(crash_ms=100.0)
        assert profile.crash_during(50.0, 150.0) == 100.0
        assert profile.crash_during(100.0, 150.0) is None  # starts at crash
        assert profile.crash_during(50.0, 100.0) is None  # ends at crash
        assert HEALTHY_PROFILE.crash_during(0.0, 1e9) is None


def _phase(ms: float, model: str = "draft-model") -> PhaseOutcome:
    return PhaseOutcome(PHASE_DRAFT, model, ms, (), True, False)


class TestDeviceFaultMath:
    def test_effective_speed_prices_batch_at_start(self):
        device = Device(0, overlap=1.0, speed=2.0)
        device.set_fault_profile(
            DeviceFaultProfile(slowdowns=((100.0, 200.0, 0.5),))
        )
        assert device.effective_speed(50.0) == pytest.approx(2.0)
        assert device.effective_speed(150.0) == pytest.approx(1.0)
        batch = [_phase(100.0)]
        assert device.batch_busy_ms(batch, at_ms=150.0) == pytest.approx(100.0)
        assert device.batch_busy_ms(batch, at_ms=250.0) == pytest.approx(50.0)
        # without at_ms the nominal speed applies (fault-free pricing)
        assert device.batch_busy_ms(batch) == pytest.approx(50.0)

    def test_execute_abort_bills_wasted_work(self):
        device = Device(0, overlap=1.0)
        end = device.execute(0.0, [_phase(100.0)], abort_ms=60.0)
        assert end == 60.0
        assert device.free_at == 60.0
        assert device.wasted_ms == pytest.approx(60.0)
        assert device.aborted_batches == 1
        # an abort beyond the batch's natural end is a no-op
        end = device.execute(60.0, [_phase(40.0)], abort_ms=500.0)
        assert end == pytest.approx(100.0)
        assert device.aborted_batches == 1

    def test_execute_abort_before_start_raises(self):
        device = Device(0, overlap=1.0)
        with pytest.raises(ValueError, match="precedes batch start"):
            device.execute(50.0, [_phase(10.0)], abort_ms=20.0)


class TestRetryPolicy:
    def test_backoff_doubles_per_attempt(self):
        policy = RetryPolicy(max_retries=3, backoff_ms=25.0)
        assert [policy.backoff_for(a) for a in (1, 2, 3)] == [25.0, 50.0, 100.0]
        assert not policy.exhausted(3)
        assert policy.exhausted(4)

    def test_zero_retries_sheds_on_first_failure(self):
        policy = RetryPolicy(max_retries=0)
        assert policy.exhausted(1)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_ms"):
            RetryPolicy(backoff_ms=-1.0)


class TestSchedulerConfigChaosKnobs:
    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            ({"max_retries": -1}, "max_retries"),
            ({"retry_backoff_ms": -1.0}, "retry_backoff_ms"),
            ({"straggler_factor": 0.5}, "straggler_factor"),
            ({"admission_deadline_ms": 0.0}, "admission_deadline_ms"),
            ({"batch_deadline_ms": -5.0}, "batch_deadline_ms"),
        ],
    )
    def test_rejects_bad_chaos_knobs(self, kwargs, fragment):
        with pytest.raises(ValueError, match=fragment):
            SchedulerConfig(**kwargs)

    def test_scheduler_rejects_plan_naming_missing_device(self):
        plan = parse_fault_spec("crash@100:dev5")
        with pytest.raises(ValueError, match="dev0..dev1"):
            ContinuousBatchScheduler(
                decoder=None, cluster=ClusterConfig(devices=2), faults=plan
            )

    def test_empty_plan_is_dropped(self):
        scheduler = ContinuousBatchScheduler(decoder=None, faults=FaultPlan())
        assert scheduler.faults is None


class TestScheduleStatsZeroGuards:
    def test_empty_run_yields_zero_not_nan(self):
        stats = ScheduleStats(
            sim_end_ms=0.0,
            device_busy_ms=0.0,
            batches=0,
            rounds=0,
            peak_queue_depth=0,
            rejected=0,
        )
        assert stats.device_utilisation == 0.0
        assert stats.mean_batch_occupancy == 0.0


class TestQueuePriorities:
    def _record(self, index: int, utterance, priority: str) -> RequestRecord:
        request = ServeRequest(f"r-{index}", index, utterance, 0.0, priority)
        return RequestRecord(request=request)

    def test_interactive_lane_pops_first(self, utterance):
        queue = AdmissionQueue(4)
        batch = self._record(0, utterance, PRIORITY_BATCH)
        inter = self._record(1, utterance, PRIORITY_INTERACTIVE)
        queue.offer(batch)
        queue.offer(inter)
        assert queue.next_priority() == PRIORITY_INTERACTIVE
        assert queue.pop() is inter
        assert queue.pop() is batch
        assert queue.next_priority() is None

    def test_full_queue_displaces_newest_batch_entry(self, utterance):
        queue = AdmissionQueue(2)
        old_batch = self._record(0, utterance, PRIORITY_BATCH)
        new_batch = self._record(1, utterance, PRIORITY_BATCH)
        inter = self._record(2, utterance, PRIORITY_INTERACTIVE)
        queue.offer(old_batch)
        queue.offer(new_batch)
        assert queue.offer(inter)
        assert new_batch.status == STATUS_REJECTED  # newest batch yields
        assert old_batch.status != STATUS_REJECTED
        assert queue.displaced == 1 and queue.rejected == 1
        assert len(queue) == 2

    def test_full_queue_rejects_batch_arrival(self, utterance):
        queue = AdmissionQueue(1)
        queue.offer(self._record(0, utterance, PRIORITY_INTERACTIVE))
        late = self._record(1, utterance, PRIORITY_BATCH)
        assert not queue.offer(late)
        assert late.status == STATUS_REJECTED
        assert queue.displaced == 0


@pytest.fixture(scope="module")
def chaos_decoder(whisper_pair):
    draft, target = whisper_pair
    return build_method("spec(8,1)", draft, target)


def _trace(specs) -> list[Arrival]:
    """Arrivals from (utterance_index, arrival_ms[, priority]) tuples."""
    return [
        Arrival(index, spec[0], spec[1], *spec[2:])
        for index, spec in enumerate(specs)
    ]


def _run(decoder, dataset, trace, config=None, cluster=None, faults=None):
    scheduler = ContinuousBatchScheduler(decoder, config, cluster, faults=faults)
    records = scheduler.run(trace, dataset)
    return records, scheduler


def _assert_conservation(records, stats):
    assert all(r.status in TERMINAL for r in records)
    completed = sum(1 for r in records if r.status == STATUS_COMPLETED)
    rejected = sum(1 for r in records if r.status == STATUS_REJECTED)
    shed = sum(1 for r in records if r.status == STATUS_SHED)
    assert completed + rejected + shed == len(records)
    assert stats.shed == shed


class TestCrashRecovery:
    CLUSTER = ClusterConfig(devices=4, router="disaggregated")
    TRACE = [(i % 6, 100.0 * i) for i in range(12)]

    def test_warm_restart_preserves_transcripts(self, chaos_decoder, clean_dataset):
        trace = _trace(self.TRACE)
        baseline, _ = _run(
            chaos_decoder, clean_dataset, trace, cluster=self.CLUSTER
        )
        plan = parse_fault_spec("crash@800:dev3:restart=1200;perr:0.05", seed=3)
        records, scheduler = _run(
            chaos_decoder, clean_dataset, trace, cluster=self.CLUSTER, faults=plan
        )
        stats = scheduler.last_stats
        _assert_conservation(records, stats)
        # the chaos actually bit: failures happened and were recovered
        assert stats.retries > 0 and stats.requeues > 0
        assert stats.fault_events == 2
        # the dead window [800, 2000) degrades the run, clipped at its end
        assert 0.0 < stats.degraded_ms <= 1200.0
        # every request survived, and survivors are bit-identical to the
        # fault-free run — recovery resumes, it does not re-decode
        for record, reference in zip(records, baseline, strict=True):
            assert record.status == STATUS_COMPLETED
            assert record.tokens == reference.tokens
            assert record.decode_ms == reference.decode_ms
            assert record.retries == record.requeues  # none exhausted

    def test_no_dispatch_starts_on_unavailable_device(
        self, chaos_decoder, clean_dataset
    ):
        trace = _trace(self.TRACE)
        plan = parse_fault_spec(
            "crash@800:dev3:restart=1200;stall@300+400:dev1", seed=3
        )
        _, scheduler = _run(
            chaos_decoder, clean_dataset, trace, cluster=self.CLUSTER, faults=plan
        )
        profiles = plan.profiles(4)
        assert scheduler.last_dispatch_log, "expected dispatches"
        for device_index, start, end, phases, _aborted in scheduler.last_dispatch_log:
            assert profiles[device_index].available(start)
            assert end >= start and phases >= 1
        # the crash aborted at least one in-flight batch on dev3
        aborted_on = {
            entry[0] for entry in scheduler.last_dispatch_log if entry[4]
        }
        assert aborted_on <= {3}

    def test_crash_rerun_is_bit_identical(self, chaos_decoder, clean_dataset):
        trace = _trace(self.TRACE)
        plan = parse_fault_spec("crash@800:dev3:restart=1200;perr:0.05", seed=3)
        first, first_sched = _run(
            chaos_decoder, clean_dataset, trace, cluster=self.CLUSTER, faults=plan
        )
        second, second_sched = _run(
            chaos_decoder, clean_dataset, trace, cluster=self.CLUSTER, faults=plan
        )
        assert [
            (r.status, r.tokens, r.finish_ms, r.retries, r.requeues)
            for r in first
        ] == [
            (r.status, r.tokens, r.finish_ms, r.retries, r.requeues)
            for r in second
        ]
        assert first_sched.last_stats == second_sched.last_stats
        assert first_sched.last_dispatch_log == second_sched.last_dispatch_log


class TestDegradation:
    def test_permanent_capacity_loss_sheds_remaining_work(
        self, chaos_decoder, clean_dataset
    ):
        trace = _trace([(0, 0.0), (1, 10.0), (2, 20.0)])
        plan = parse_fault_spec("crash@0:dev0")
        records, scheduler = _run(chaos_decoder, clean_dataset, trace, faults=plan)
        _assert_conservation(records, scheduler.last_stats)
        assert all(r.status == STATUS_SHED for r in records)
        assert all(r.shed_reason == SHED_CAPACITY for r in records)

    def test_retry_exhaustion_sheds_with_reason(self, chaos_decoder, clean_dataset):
        trace = _trace([(0, 0.0), (1, 50.0), (2, 100.0)])
        plan = parse_fault_spec("perr:0.9", seed=1)
        config = SchedulerConfig(max_retries=0, retry_backoff_ms=0.0)
        records, scheduler = _run(
            chaos_decoder, clean_dataset, trace, config=config, faults=plan
        )
        stats = scheduler.last_stats
        _assert_conservation(records, stats)
        shed = [r for r in records if r.status == STATUS_SHED]
        assert shed, "a 90% phase-error rate with no retries must shed"
        assert all(r.shed_reason == SHED_RETRIES for r in shed)
        assert stats.retries >= len(shed)

    def test_admission_deadline_sheds_stale_queue_entries(
        self, chaos_decoder, clean_dataset
    ):
        trace = _trace([(0, 0.0), (1, 1.0)])
        config = SchedulerConfig(
            max_batch=1,
            max_inflight=1,
            queue_capacity=4,
            admission_deadline_ms=5.0,
        )
        records, scheduler = _run(chaos_decoder, clean_dataset, trace, config=config)
        _assert_conservation(records, scheduler.last_stats)
        assert records[0].status == STATUS_COMPLETED
        assert records[1].status == STATUS_SHED
        assert records[1].shed_reason == SHED_DEADLINE
        assert records[1].service_start_ms is None  # no device time wasted

    def test_interactive_preempts_idle_batch_session(
        self, chaos_decoder, clean_dataset
    ):
        trace = _trace(
            [(0, 0.0, PRIORITY_BATCH), (1, 1.0, PRIORITY_INTERACTIVE)]
        )
        config = SchedulerConfig(max_batch=1, max_inflight=1, queue_capacity=4)
        baseline, _ = _run(
            chaos_decoder,
            clean_dataset,
            _trace([(0, 0.0), (1, 1.0)]),
            config=config,
        )
        records, scheduler = _run(chaos_decoder, clean_dataset, trace, config=config)
        stats = scheduler.last_stats
        _assert_conservation(records, stats)
        batch, interactive = records
        assert batch.status == interactive.status == STATUS_COMPLETED
        assert stats.preemptions >= 1 and batch.preemptions >= 1
        # the bumped session resumed rather than restarting: transcripts
        # stay scheduler-independent
        assert batch.tokens == baseline[0].tokens
        assert interactive.tokens == baseline[1].tokens
        # the interactive request finished first despite arriving second
        assert interactive.finish_ms < batch.finish_ms

    def test_interactive_displaces_queued_batch_work(
        self, chaos_decoder, clean_dataset
    ):
        trace = _trace(
            [
                (0, 0.0, PRIORITY_INTERACTIVE),
                (1, 1.0, PRIORITY_BATCH),
                (2, 2.0, PRIORITY_INTERACTIVE),
            ]
        )
        config = SchedulerConfig(max_batch=1, max_inflight=1, queue_capacity=1)
        records, scheduler = _run(chaos_decoder, clean_dataset, trace, config=config)
        stats = scheduler.last_stats
        _assert_conservation(records, stats)
        assert records[1].status == STATUS_REJECTED  # bumped out of the queue
        assert records[0].status == records[2].status == STATUS_COMPLETED
        assert stats.displaced == 1

    def test_straggler_reissue_first_finisher_wins(
        self, chaos_decoder, clean_dataset
    ):
        # Hedging only ever uses *spare* capacity (an idle pool peer with
        # nothing routed to it), so it needs a workload that leaves gaps:
        # this trace deterministically produces a dispatch round where a
        # healthy device sits idle while a phase on the 20x-slow dev3
        # projects past 1.5x the running median.
        trace = _trace([(i % 6, 5.0 * i) for i in range(24)])
        cluster = ClusterConfig(devices=4)
        plan = parse_fault_spec("slow:dev3:x0.05")
        config = SchedulerConfig(straggler_factor=1.5)
        baseline, _ = _run(chaos_decoder, clean_dataset, trace, cluster=cluster)
        records, scheduler = _run(
            chaos_decoder,
            clean_dataset,
            trace,
            config=config,
            cluster=cluster,
            faults=plan,
        )
        stats = scheduler.last_stats
        _assert_conservation(records, stats)
        assert stats.duplicates > 0, "the 20x straggler must trigger re-issues"
        assert stats.cancelled > 0, "losing copies must settle as stale"
        for record, reference in zip(records, baseline, strict=True):
            assert record.status == STATUS_COMPLETED
            assert record.tokens == reference.tokens
            assert record.decode_ms == reference.decode_ms


class TestRequeueDeterminism:
    CONFIG = ServeSimConfig(
        qps=8.0,
        num_requests=12,
        utterances=6,
        devices=4,
        router="disaggregated",
        faults="crash@600:dev3:restart=800;perr:0.05",
        fault_seed=3,
        batch_fraction=0.25,
    )

    def test_same_plan_reproduces_identical_reports(self):
        first = simulate(self.CONFIG)
        second = simulate(self.CONFIG)
        assert first.to_dict() == second.to_dict()
        assert first.chaos_active
        chaos = first.chaos_dict()
        assert chaos["fault_events"] == 2
        assert chaos["retries"] >= chaos["requeues"] >= 0

    def test_worker_pool_matches_serial_sweep(self):
        qps_values = (4.0, 8.0)
        serial = sweep_qps(self.CONFIG, qps_values)
        executor = CorpusExecutor(workers=2, backend="thread")
        pooled = sweep_qps(self.CONFIG, qps_values, executor=executor)
        assert {q: r.to_dict() for q, r in serial.items()} == {
            q: r.to_dict() for q, r in pooled.items()
        }

    def test_fault_seed_changes_transient_errors(self):
        base = simulate(self.CONFIG)
        reseeded = simulate(replace(self.CONFIG, fault_seed=99))
        # same offered work, different transient-error draws
        assert base.num_requests == reseeded.num_requests
        assert (
            base.stats.retries != reseeded.stats.retries
            or base.to_dict() != reseeded.to_dict()
        )


class TestChaosReport:
    def test_report_surfaces_chaos_and_classes(self):
        config = ServeSimConfig(
            qps=8.0,
            num_requests=12,
            utterances=6,
            devices=4,
            router="disaggregated",
            faults="crash@600:dev3:restart=800",
            batch_fraction=0.5,
            batch_deadline_ms=9000.0,
        )
        report = simulate(config)
        payload = report.to_dict()
        assert payload["batch_deadline_ms"] == 9000.0
        assert set(payload["per_class"]) == {
            PRIORITY_INTERACTIVE,
            PRIORITY_BATCH,
        }
        for row in payload["per_class"].values():
            assert (
                row["completed"] + row["rejected"] + row["shed"]
                <= row["arrived"]
            )
        assert payload["chaos"]["fault_events"] == 1
        rendered = report.render()
        assert "chaos" in rendered and "degraded" in rendered
        assert "class" in rendered

    def test_fault_free_report_omits_chaos_block(self):
        config = ServeSimConfig(qps=2.0, num_requests=6, utterances=6)
        report = simulate(config)
        assert not report.chaos_active
        payload = report.to_dict()
        assert "chaos" not in payload
        assert "per_class" not in payload
        assert payload["shed"] == 0


class TestMakeTracePriorities:
    def test_zero_fraction_matches_legacy_trace(self):
        legacy = make_trace("poisson", 16, 4.0, 8, seed=5)
        tagged = make_trace("poisson", 16, 4.0, 8, seed=5, batch_fraction=0.0)
        assert legacy == tagged
        assert all(a.priority == PRIORITY_INTERACTIVE for a in legacy)

    def test_fraction_tags_batch_arrivals_deterministically(self):
        a = make_trace("poisson", 40, 4.0, 8, seed=5, batch_fraction=0.5)
        b = make_trace("poisson", 40, 4.0, 8, seed=5, batch_fraction=0.5)
        assert a == b
        classes = {arrival.priority for arrival in a}
        assert classes == {PRIORITY_INTERACTIVE, PRIORITY_BATCH}
        # arrival times are untouched by the class tagging
        untagged = make_trace("poisson", 40, 4.0, 8, seed=5)
        assert [x.arrival_ms for x in a] == [x.arrival_ms for x in untagged]
