"""Tests for the draft token tree and its 2-D attention mask."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.decoding.token_tree import TokenTree


def build_sample_tree():
    """Root-level fork, one side extended: mirrors paper Fig. 4."""
    tree = TokenTree()
    a = tree.add(10)
    b = tree.add(20)
    a1 = tree.add(11, parent=a)
    a2 = tree.add(12, parent=a1)
    b1 = tree.add(21, parent=b)
    return tree, (a, b, a1, a2, b1)


class TestConstruction:
    def test_add_and_parents(self):
        tree, (a, b, a1, a2, b1) = build_sample_tree()
        assert len(tree) == 5
        assert tree.nodes[a1].parent == a
        assert a1 in tree.nodes[a].children
        tree.validate()

    def test_bad_parent_rejected(self):
        tree = TokenTree()
        with pytest.raises(IndexError):
            tree.add(1, parent=5)

    def test_add_chain(self):
        tree = TokenTree()
        nodes = tree.add_chain([1, 2, 3])
        assert tree.path_tokens(nodes[-1]) == [1, 2, 3]
        assert tree.max_depth() == 3

    def test_from_sequences_merges_prefixes(self):
        tree = TokenTree.from_sequences([[1, 2, 3], [1, 2, 4], [1, 5]])
        # shared prefix [1,2] stored once: nodes = 1,2,3,4,5
        assert len(tree) == 5
        leaves = {tuple(tree.path_tokens(leaf)) for leaf in tree.leaves()}
        assert leaves == {(1, 2, 3), (1, 2, 4), (1, 5)}

    def test_roots_and_leaves(self):
        tree, (a, b, a1, a2, b1) = build_sample_tree()
        assert set(tree.roots()) == {a, b}
        assert set(tree.leaves()) == {a2, b1}
        assert tree.num_branches() == 2

    def test_depth_and_ancestors(self):
        tree, (a, b, a1, a2, b1) = build_sample_tree()
        assert tree.depth_of(a2) == 3
        assert tree.ancestors(a2) == [a, a1, a2]
        assert tree.path_tokens(a2) == [10, 11, 12]

    def test_recycled_count(self):
        tree = TokenTree()
        tree.add(1, recycled=True)
        tree.add(2)
        assert tree.recycled_count() == 1


class TestAttentionMask:
    def test_mask_matches_ancestor_relation(self):
        tree, nodes = build_sample_tree()
        mask = tree.attention_mask()
        n = len(tree)
        for i in range(n):
            ancestors = set(tree.ancestors(i))
            for j in range(n):
                assert mask[i, j] == (j in ancestors)

    def test_mask_blocks_cross_branch(self):
        tree, (a, b, a1, a2, b1) = build_sample_tree()
        mask = tree.attention_mask()
        assert not mask[b1, a]
        assert not mask[a2, b]

    def test_mask_diagonal_true(self):
        tree, _ = build_sample_tree()
        assert np.all(np.diag(tree.attention_mask()))

    @given(
        st.lists(
            st.lists(st.integers(0, 3), min_size=1, max_size=6),
            min_size=1,
            max_size=5,
        )
    )
    def test_mask_property_random_tries(self, sequences):
        """For any trie: mask[i][j] iff j is an ancestor-or-self of i, and
        the mask is lower-triangular (topological node order)."""
        tree = TokenTree.from_sequences(sequences)
        tree.validate()
        mask = tree.attention_mask()
        for i in range(len(tree)):
            ancestors = set(tree.ancestors(i))
            assert {j for j in range(len(tree)) if mask[i, j]} == ancestors
            assert all(j <= i for j in ancestors)

    @given(
        st.lists(
            st.lists(st.integers(0, 3), min_size=1, max_size=6),
            min_size=1,
            max_size=5,
        )
    )
    def test_paths_roundtrip(self, sequences):
        tree = TokenTree.from_sequences(sequences)
        leaf_paths = {tuple(tree.path_tokens(leaf)) for leaf in tree.leaves()}
        # every input sequence is a prefix of some leaf path
        for sequence in sequences:
            assert any(tuple(sequence) == path[: len(sequence)] for path in leaf_paths)
