"""Tests for autoregressive, vanilla speculative and fixed-tree decoders."""

import pytest

from repro.decoding.autoregressive import AutoregressiveDecoder
from repro.decoding.base import strip_eos
from repro.decoding.speculative import SpeculativeConfig, SpeculativeDecoder, commit
from repro.decoding.tree_spec import FixedTreeConfig, FixedTreeDecoder

from tests.fakes import EOS, FakeUnit, ScriptedModel


class TestHelpers:
    def test_strip_eos(self):
        assert strip_eos([5, 6, EOS], EOS) == [5, 6]
        assert strip_eos([5, 6], EOS) == [5, 6]
        assert strip_eos([], EOS) == []

    def test_commit_stops_at_eos(self):
        prefix, done = commit([5], [6, EOS, 9], EOS)
        assert prefix == [5, 6, EOS]
        assert done

    def test_commit_without_eos(self):
        prefix, done = commit([5], [6, 7], EOS)
        assert prefix == [5, 6, 7]
        assert not done


class TestAutoregressive:
    def test_decodes_stream(self):
        target = ScriptedModel(stream=[5, 6, 7, EOS], name="target")
        result = AutoregressiveDecoder(target).decode(FakeUnit())
        assert result.tokens == [5, 6, 7]

    def test_one_forward_per_token(self):
        target = ScriptedModel(stream=[5, 6, 7, EOS], name="target")
        result = AutoregressiveDecoder(target).decode(FakeUnit())
        assert result.clock.count_for_kind("decode") == 4  # 3 tokens + EOS

    def test_respects_length_cap(self):
        # Stream never emits EOS within the cap.
        target = ScriptedModel(stream=[5] * 100, name="target")
        target.session = lambda unit, clock, _m=target: _CappedSession(_m, clock)
        result = AutoregressiveDecoder(target).decode(FakeUnit())
        assert len(result.tokens) <= 104


class _CappedSession:
    """Session with a small cap to exercise the decoder's safety net."""

    def __init__(self, model, clock):
        from tests.fakes import ScriptedSession

        self._inner = ScriptedSession(model, clock)

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def max_decode_positions(self):
        return 6


class TestSpeculative:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SpeculativeConfig(draft_len=0)
        with pytest.raises(ValueError):
            SpeculativeConfig(beams=3)

    def test_lossless_when_models_agree(self):
        stream = [5, 6, 7, 8, 9, EOS]
        draft = ScriptedModel(stream=list(stream), name="draft")
        target = ScriptedModel(stream=list(stream), name="target")
        result = SpeculativeDecoder(draft, target, SpeculativeConfig(4, 1)).decode(
            FakeUnit()
        )
        assert result.tokens == [5, 6, 7, 8, 9]
        # perfect agreement: first round accepts all 4 drafts
        assert result.trace.rounds[0].accepted_tokens == 4

    def test_lossless_when_models_disagree(self):
        target_stream = [5, 6, 7, 8, EOS]
        draft_stream = [5, 9, 7, 8, EOS]  # disagrees at position 1
        draft = ScriptedModel(stream=draft_stream, name="draft")
        target = ScriptedModel(stream=target_stream, name="target")
        result = SpeculativeDecoder(draft, target, SpeculativeConfig(4, 1)).decode(
            FakeUnit()
        )
        assert result.tokens == [5, 6, 7, 8]

    def test_draft_steps_bounded_by_gamma(self):
        stream = [5] * 20 + [EOS]
        draft = ScriptedModel(stream=list(stream), name="draft")
        target = ScriptedModel(stream=list(stream), name="target")
        result = SpeculativeDecoder(draft, target, SpeculativeConfig(8, 1)).decode(
            FakeUnit()
        )
        assert all(r.draft_steps <= 8 for r in result.trace.rounds)

    def test_two_beams_builds_tree(self):
        stream = [5, 6, 7, EOS]
        draft = ScriptedModel(stream=list(stream), name="draft")
        target = ScriptedModel(stream=list(stream), name="target")
        result = SpeculativeDecoder(draft, target, SpeculativeConfig(4, 2)).decode(
            FakeUnit()
        )
        assert result.tokens == [5, 6, 7]
        first_round = result.trace.rounds[0]
        assert first_round.tree_nodes > first_round.submitted_tokens

    def test_latency_totals_equal_event_sum(self):
        stream = [5, 6, 7, EOS]
        draft = ScriptedModel(stream=list(stream), name="draft")
        target = ScriptedModel(stream=list(stream), name="target")
        result = SpeculativeDecoder(draft, target).decode(FakeUnit())
        assert result.total_ms == pytest.approx(sum(e.ms for e in result.clock.events))


class TestFixedTree:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FixedTreeConfig(branching=())
        with pytest.raises(ValueError):
            FixedTreeConfig(branching=(2, 0))

    def test_lossless(self):
        stream = [5, 6, 7, 8, EOS]
        draft = ScriptedModel(stream=list(stream), name="draft")
        target = ScriptedModel(stream=list(stream), name="target")
        result = FixedTreeDecoder(
            draft, target, FixedTreeConfig((2, 1, 1))
        ).decode(FakeUnit())
        assert result.tokens == [5, 6, 7, 8]

    def test_tree_width_follows_branching(self):
        stream = [5, 6, 7, 8, EOS]
        draft = ScriptedModel(stream=list(stream), name="draft")
        target = ScriptedModel(stream=list(stream), name="target")
        result = FixedTreeDecoder(
            draft, target, FixedTreeConfig((2, 2, 1))
        ).decode(FakeUnit())
        first = result.trace.rounds[0]
        # depth-wise: 2 roots, then 4, then 4 → 10 nodes
        assert first.tree_nodes == 10

    def test_on_simulated_models_matches_ar(self, whisper_pair, clean_dataset):
        draft, target = whisper_pair
        ar = AutoregressiveDecoder(target)
        tree = FixedTreeDecoder(draft, target)
        for utterance in list(clean_dataset)[:3]:
            assert tree.decode(utterance).tokens == ar.decode(utterance).tokens
