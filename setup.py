"""Legacy setup shim.

The execution environment has no `wheel` package and no network access, so
PEP 660 editable installs are unavailable; this shim enables
``pip install -e . --no-build-isolation --no-use-pep517``.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
