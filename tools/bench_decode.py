#!/usr/bin/env python
"""Wall-clock decode benchmark: serial vs. parallel vs. pre/post-trie.

Times the standard method suite over a LibriSim split in four modes:

* ``serial_tuple``   — decoders talk to sessions through the legacy tuple
  interface (every call passes a full token-sequence prefix, forcing a
  per-call prefix walk — the pre-trie session cost model);
* ``serial_cursor``  — the trie-cursor fast path, serial corpus loop;
* ``parallel_cursor`` — the trie-cursor fast path through
  :class:`repro.harness.executor.CorpusExecutor` with ``--workers`` workers
  (the ``auto`` backend picks the fastest plan for the hardware: process
  pool on multi-core machines, plain serial on single-core boxes where
  pools are pure overhead);
* ``vectorized``     — the block-vectorised emission oracle: every (model,
  utterance) anchored distribution is materialised through one grouped
  array pass (``prewarm_models``, paid inside the measured wall), then the
  suite decodes over warm caches.  The first three modes pin
  ``oracle_block_size=1`` so the scalar per-position path stays the
  reference; transcripts and SimClock totals are asserted bit-identical
  across all four.

Each mode runs ``--reps`` times with fresh models and cleared module-level
caches (cold oracle state, like a fresh serving process); the best wall
time is kept.  Transcripts and SimClock totals are asserted identical
across modes before anything is written.

The ``seed_reference`` block records the wall time of the original
pre-refactor serial runner, measured at the seed commit on the same
machine/config; regeneration carries it forward from the existing JSON
(or accepts ``--seed-baseline-s``).

Usage::

    PYTHONPATH=src python tools/bench_decode.py                 # full bench
    PYTHONPATH=src python tools/bench_decode.py --smoke         # CI guard

``--smoke`` runs a reduced corpus and exits non-zero if utterances/sec
regressed more than ``--tolerance`` (default 20%) against the checked-in
``BENCH_decode.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness.executor import CorpusExecutor  # noqa: E402
from repro.harness.methods import STANDARD_METHODS, standard_methods  # noqa: E402
from repro.harness.runner import (  # noqa: E402
    ExperimentConfig,
    load_split,
    run_methods,
    shared_vocabulary,
)
from repro.models.acoustic import clear_acoustic_caches  # noqa: E402
from repro.models.registry import model_pair  # noqa: E402
from repro.models.simulated import prewarm_models  # noqa: E402


class TupleShimSession:
    """Forwards session calls with plain tuple prefixes (legacy interface).

    Hiding the native ``cursor()`` factory makes every decoder fall back to
    tuple-backed cursors, so each forward pass re-presents its full prefix —
    the per-call cost shape of the pre-trie ``DecodeSession``.
    """

    def __init__(self, inner) -> None:
        self._inner = inner

    def prefill(self) -> None:
        self._inner.prefill()

    def peek(self, prefix):
        return self._inner.peek(tuple(prefix))

    def step(self, prefix, kind="decode"):
        return self._inner.step(tuple(prefix), kind=kind)

    def step_frontier(self, prefixes, kind="draft"):
        return self._inner.step_frontier([tuple(p) for p in prefixes], kind=kind)

    def verify_eval(self, prefixes, billed_tokens=None):
        return self._inner.verify_eval(
            [tuple(p) for p in prefixes], billed_tokens=billed_tokens
        )

    def rollback(self, kept_prefix_len: int) -> None:
        self._inner.rollback(kept_prefix_len)  # no pruning, like the seed

    def is_eos(self, token: int) -> bool:
        return self._inner.is_eos(token)

    def max_decode_positions(self) -> int:
        return self._inner.max_decode_positions()


class TupleShimModel:
    """Model wrapper whose sessions only speak the tuple interface."""

    def __init__(self, model) -> None:
        self._model = model
        self.name = model.name
        self.vocab = model.vocab

    def session(self, unit, clock) -> TupleShimSession:
        return TupleShimSession(self._model.session(unit, clock))


def _fresh_methods(pairing: str, shim: bool, block_size: int | None = 1):
    """Standard method suite plus its model pair.

    Legacy modes pin ``oracle_block_size=1`` — the scalar per-position
    oracle is the reference cost shape; the ``vectorized`` mode passes
    ``None`` to keep the models' block-vectorised default.
    """
    draft, target = model_pair(
        pairing, shared_vocabulary(), oracle_block_size=block_size
    )
    models = (draft, target)
    if shim:
        draft, target = TupleShimModel(draft), TupleShimModel(target)
    return standard_methods(draft, target), models


def _measure(
    pairing,
    dataset,
    reps,
    shim=False,
    executor=None,
    block_size: int | None = 1,
    prewarm=False,
):
    """Best wall time over ``reps`` cold runs; returns (wall_s, runs).

    ``prewarm`` materialises every (model, utterance) anchored distribution
    through the grouped array pass *inside* the measured wall — the
    vectorised mode pays its batching up front, so the comparison against
    the lazy scalar modes stays honest.
    """
    best = float("inf")
    runs = None
    for _ in range(reps):
        clear_acoustic_caches()
        methods, models = _fresh_methods(pairing, shim, block_size)
        start = time.perf_counter()
        if prewarm:
            prewarm_models(models, dataset)
        result = run_methods(methods, dataset, executor=executor)
        wall = time.perf_counter() - start
        if wall < best:
            best = wall
        runs = result
    return best, runs


def _environment() -> dict:
    """Interpreter/library versions the wall numbers were measured under."""
    import platform

    import numpy

    return {"python": platform.python_version(), "numpy": numpy.__version__}


def _mode_stats(wall_s, dataset, runs):
    decodes = len(dataset) * len(runs)
    emitted = sum(len(r.tokens) for run in runs.values() for r in run.results)
    return {
        "wall_s": round(wall_s, 4),
        "utterances_per_s": round(len(dataset) / wall_s, 2),
        "decodes_per_s": round(decodes / wall_s, 2),
        "ms_per_emitted_token": round(wall_s * 1000.0 / emitted, 4),
        "emitted_tokens": emitted,
    }


def _transcripts(runs):
    return {name: [r.tokens for r in run.results] for name, run in runs.items()}


def _clock_totals(runs):
    return {
        name: [round(r.total_ms, 6) for r in run.results] for name, run in runs.items()
    }


def run_bench(args) -> dict:
    config = ExperimentConfig(seed=args.seed, utterances=args.utterances)
    dataset = load_split(args.split, config)

    wall_tuple, runs_tuple = _measure(args.pairing, dataset, args.reps, shim=True)
    wall_cursor, runs_cursor = _measure(args.pairing, dataset, args.reps)
    executor = CorpusExecutor(workers=args.workers, backend=args.backend)
    wall_parallel, runs_parallel = _measure(
        args.pairing, dataset, args.reps, executor=executor
    )
    wall_vector, runs_vector = _measure(
        args.pairing, dataset, args.reps, block_size=None, prewarm=True
    )

    identical_transcripts = (
        _transcripts(runs_tuple)
        == _transcripts(runs_cursor)
        == _transcripts(runs_parallel)
        == _transcripts(runs_vector)
    )
    identical_clocks = (
        _clock_totals(runs_tuple)
        == _clock_totals(runs_cursor)
        == _clock_totals(runs_parallel)
        == _clock_totals(runs_vector)
    )
    if not identical_transcripts or not identical_clocks:
        raise AssertionError(
            "bench modes diverged: transcripts identical="
            f"{identical_transcripts}, simclock identical={identical_clocks}"
        )

    ar_ms = sum(r.total_ms for r in runs_cursor["autoregressive"].results)
    sim_speedups = {
        name: round(ar_ms / sum(r.total_ms for r in run.results), 3)
        for name, run in runs_cursor.items()
    }

    report = {
        "config": {
            "split": args.split,
            "utterances": args.utterances,
            "seed": args.seed,
            "pairing": args.pairing,
            "methods": list(STANDARD_METHODS),
            "workers": args.workers,
            "backend": args.backend,
            "reps": args.reps,
        },
        "modes": {
            "serial_tuple": _mode_stats(wall_tuple, dataset, runs_tuple),
            "serial_cursor": _mode_stats(wall_cursor, dataset, runs_cursor),
            "parallel_cursor": {
                **_mode_stats(wall_parallel, dataset, runs_parallel),
                "effective_backend": (
                    executor.last_stats.backend if executor.last_stats else "?"
                ),
            },
            "vectorized": _mode_stats(wall_vector, dataset, runs_vector),
        },
        "speedups": {
            "cursor_vs_tuple_serial": round(wall_tuple / wall_cursor, 3),
            "parallel_vs_tuple_serial": round(wall_tuple / wall_parallel, 3),
            "vectorized_vs_tuple_serial": round(wall_tuple / wall_vector, 3),
            "vectorized_vs_parallel_cursor": round(wall_parallel / wall_vector, 3),
        },
        "sim_speedup_vs_autoregressive": sim_speedups,
        "identical_transcripts": identical_transcripts,
        "identical_simclock_totals": identical_clocks,
        "environment": _environment(),
    }

    seed_wall = args.seed_baseline_s
    if seed_wall is None and args.output.exists():
        try:
            prior = json.loads(args.output.read_text())
            prior_config = prior.get("config", {})
            # Only carry the baseline forward onto the same corpus; a wall
            # time measured on a different split/size is not comparable.
            comparable = all(
                prior_config.get(key) == report["config"][key]
                for key in ("split", "utterances", "seed", "pairing")
            )
            if comparable:
                seed_wall = prior.get("seed_reference", {}).get("wall_s")
        except (json.JSONDecodeError, OSError):
            seed_wall = None
    if seed_wall is not None:
        report["seed_reference"] = {
            "wall_s": seed_wall,
            "note": (
                "wall time of the pre-refactor serial runner (tuple-keyed "
                "DecodeSession, commit c93222d) over the same corpus/config, "
                "measured on the machine that generated this file; carried "
                "forward on regeneration, or overridden with "
                "--seed-baseline-s"
            ),
        }
        report["speedups"]["parallel_vs_seed_serial"] = round(
            seed_wall / wall_parallel, 3
        )
        report["speedups"]["cursor_vs_seed_serial"] = round(seed_wall / wall_cursor, 3)
    return report


#: Smoke floor for the vectorised mode: it must beat the scalar cursor
#: reference by at least this factor (the full bench demonstrates >=1.5x on
#: the 32-utterance corpus; the smoke corpus is smaller, so the gate is
#: looser to absorb fixed costs and runner noise).
SMOKE_VECTOR_MIN_SPEEDUP = 1.2


def run_smoke(args) -> int:
    """Quick regression guard against the checked-in baseline."""
    config = ExperimentConfig(seed=args.seed, utterances=args.smoke_utterances)
    dataset = load_split(args.split, config)
    wall, runs = _measure(args.pairing, dataset, max(args.reps, 2))
    stats = _mode_stats(wall, dataset, runs)
    print(
        f"smoke: {stats['utterances_per_s']} utterances/s "
        f"({args.smoke_utterances} utterances, best of {max(args.reps, 2)})"
    )
    wall_vector, runs_vector = _measure(
        args.pairing, dataset, max(args.reps, 2), block_size=None, prewarm=True
    )
    vector_stats = _mode_stats(wall_vector, dataset, runs_vector)
    vector_speedup = round(wall / wall_vector, 3)
    print(
        f"smoke vectorized: {vector_stats['utterances_per_s']} utterances/s "
        f"({vector_speedup}x the scalar cursor mode)"
    )
    if args.smoke_output:
        payload = {
            "utterances": args.smoke_utterances,
            **stats,
            "vectorized": vector_stats,
            "vectorized_speedup": vector_speedup,
            "environment": _environment(),
        }
        args.smoke_output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.smoke_output}")
    if _transcripts(runs_vector) != _transcripts(runs) or _clock_totals(
        runs_vector
    ) != _clock_totals(runs):
        print(
            "FAIL: vectorized mode diverged from the scalar reference "
            "(transcripts or SimClock totals) — bit-identity contract "
            "violated",
            file=sys.stderr,
        )
        return 1
    if vector_speedup < SMOKE_VECTOR_MIN_SPEEDUP:
        print(
            f"FAIL: vectorized mode is only {vector_speedup}x the scalar "
            f"cursor mode (< {SMOKE_VECTOR_MIN_SPEEDUP}x)",
            file=sys.stderr,
        )
        return 1
    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; nothing to compare", file=sys.stderr)
        return 0
    baseline = json.loads(args.baseline.read_text())
    reference = baseline.get("smoke", {}).get("utterances_per_s")
    if not reference:
        print("baseline JSON has no smoke reference; skipping check")
        return 0
    floor = reference * (1.0 - args.tolerance)
    print(
        f"baseline {reference} utterances/s -> floor {floor:.2f} "
        f"(tolerance {args.tolerance:.0%})"
    )
    if stats["utterances_per_s"] < floor:
        print(
            f"FAIL: throughput regressed more than {args.tolerance:.0%} "
            f"({stats['utterances_per_s']} < {floor:.2f})",
            file=sys.stderr,
        )
        return 1
    print("OK: within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--split", default="test-clean")
    parser.add_argument("--utterances", type=int, default=32)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--pairing", default="whisper")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--backend", default="auto", choices=("auto", "serial", "thread", "process")
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        help="cold repetitions per mode; best wall time kept",
    )
    parser.add_argument("--output", type=Path, default=REPO_ROOT / "BENCH_decode.json")
    parser.add_argument(
        "--seed-baseline-s",
        type=float,
        default=None,
        help="measured wall time of the seed serial runner",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced run; fail on >tolerance regression",
    )
    parser.add_argument("--smoke-utterances", type=int, default=8)
    parser.add_argument(
        "--smoke-output",
        type=Path,
        default=None,
        help="write the smoke measurement JSON here (CI " "artifact)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=REPO_ROOT / "BENCH_decode.json"
    )
    parser.add_argument("--tolerance", type=float, default=0.20)
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke(args)

    report = run_bench(args)

    # Record the smoke reference alongside, so --smoke has a baseline.
    smoke_config = ExperimentConfig(seed=args.seed, utterances=args.smoke_utterances)
    smoke_dataset = load_split(args.split, smoke_config)
    smoke_wall, smoke_runs = _measure(args.pairing, smoke_dataset, max(args.reps, 2))
    report["smoke"] = {
        "utterances": args.smoke_utterances,
        **_mode_stats(smoke_wall, smoke_dataset, smoke_runs),
    }
    smoke_vector_wall, _ = _measure(
        args.pairing,
        smoke_dataset,
        max(args.reps, 2),
        block_size=None,
        prewarm=True,
    )
    report["smoke"]["vectorized_speedup"] = round(smoke_wall / smoke_vector_wall, 3)

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
