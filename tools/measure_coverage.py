#!/usr/bin/env python
"""Stdlib-only line-coverage measurement for the tier-1 suite.

CI measures coverage with ``pytest-cov`` (see ``.github/workflows/ci.yml``),
whose ``--cov-fail-under`` floor was calibrated with this script: it runs
the tier-1 pytest suite under a ``sys.settrace`` line tracer restricted to
``src/repro`` and reports per-file and total line coverage, where the
executable-line universe is taken from the compiled code objects'
``co_lines()`` tables — the same definition ``coverage.py`` uses for plain
line coverage.  No third-party dependency needed, so the floor can be
re-calibrated in any environment that runs the tests:

    PYTHONPATH=src python tools/measure_coverage.py

The tracer skips frames outside ``src/repro`` at call time, so the
overhead stays within a few multiples of the plain suite runtime.  Worker
threads are traced via ``threading.settrace``; subprocess pools are not,
so the reported number slightly *undershoots* what pytest-cov measures —
which keeps a floor derived from it conservative.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
sys.path.insert(0, str(REPO_ROOT / "src"))
# `python -m pytest` puts the cwd on sys.path; pytest.main() from this
# script does not, and the suite imports `tests.fakes` absolutely.
sys.path.insert(0, str(REPO_ROOT))


def executable_lines(path: Path) -> set[int]:
    """Line numbers that carry code, from the compiled code objects."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(line for _, _, line in obj.co_lines() if line is not None)
        stack.extend(c for c in obj.co_consts if hasattr(c, "co_lines"))
    return lines


def main() -> int:
    universe: dict[str, set[int]] = {}
    for path in sorted(SRC_ROOT.rglob("*.py")):
        universe[str(path)] = executable_lines(path)

    hit: dict[str, set[int]] = {filename: set() for filename in universe}
    src_prefix = str(SRC_ROOT)

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(src_prefix):
            return None  # never trace lines of foreign frames
        if event == "line":
            lines = hit.get(filename)
            if lines is not None:
                lines.add(frame.f_lineno)
        return tracer

    import pytest

    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        exit_code = pytest.main(["-x", "-q", "-p", "no:cacheprovider", "tests"])
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]
    if exit_code != 0:
        print(f"pytest failed ({exit_code}); coverage numbers are meaningless")
        return int(exit_code)

    total_lines = 0
    total_hit = 0
    print(f"\n{'file':58s} {'lines':>6s} {'hit':>6s} {'cover':>7s}")
    for filename in sorted(universe):
        lines = universe[filename]
        if not lines:
            continue
        covered = len(hit[filename] & lines)
        total_lines += len(lines)
        total_hit += covered
        rel = str(Path(filename).relative_to(REPO_ROOT))
        print(f"{rel:58s} {len(lines):6d} {covered:6d} {covered / len(lines):6.1%}")
    print(
        f"\nTOTAL: {total_hit}/{total_lines} executable lines "
        f"({total_hit / total_lines:.2%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
