"""Transcript digest for the hash-seed determinism cross-check.

Runs a small but representative slice of the simulation — a decode grid
over every standard method plus one serve simulation — and folds every
transcript, simulated latency and SLO counter into one SHA-256 digest.

CI runs this twice, once under ``PYTHONHASHSEED=0`` and once under
``PYTHONHASHSEED=random``, and diffs the digests.  If anything in the
stack leaked a builtin ``hash()``/``id()`` ordering or an unseeded RNG
into a simulated decision (the bug classes DET002-004 lint for), the
digests diverge — proving the lint rules guard a real, end-to-end
property rather than a style preference.

Usage::

    PYTHONPATH=src python tools/determinism_digest.py [--output FILE]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.methods import standard_methods  # noqa: E402
from repro.harness.runner import (  # noqa: E402
    ExperimentConfig,
    load_split,
    shared_vocabulary,
)
from repro.models.registry import model_pair  # noqa: E402
from repro.serving import ServeSimConfig, simulate  # noqa: E402


def decode_component(utterances: int, seed: int) -> dict:
    """Every standard method over a small corpus: transcripts + latencies."""
    config = ExperimentConfig(seed=seed, utterances=utterances)
    dataset = load_split("test-clean", config)
    draft, target = model_pair("whisper", shared_vocabulary())
    grid = {}
    for name, decoder in standard_methods(draft, target).items():
        rows = []
        for index in range(len(dataset)):
            result = decoder.decode(dataset[index])
            rows.append(
                {
                    "index": index,
                    "tokens": list(result.tokens),
                    "total_ms": result.total_ms,
                }
            )
        grid[name] = rows
    return grid


def serve_component(seed: int) -> dict:
    """One multi-device serve simulation, chaos + memory + streaming on."""
    config = ServeSimConfig(
        method="specasr-asp",
        qps=6.0,
        num_requests=16,
        utterances=8,
        seed=seed,
        devices=2,
        router="merged",
        memory_blocks=96,
        streaming=True,
        faults="perr:0.05",
        fault_seed=seed,
    )
    report = simulate(config)
    return report.to_dict()


def build_payload(utterances: int, seed: int) -> dict:
    return {
        "decode": decode_component(utterances, seed),
        "serve": serve_component(seed),
    }


def digest_payload(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--utterances", type=int, default=6)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--output", default=None, metavar="FILE", help="write digest JSON here"
    )
    args = parser.parse_args(argv)
    payload = build_payload(args.utterances, args.seed)
    digest = digest_payload(payload)
    record = {
        "digest": digest,
        "seed": args.seed,
        "utterances": args.utterances,
        "pythonhashseed": os.environ.get("PYTHONHASHSEED", "<unset>"),
    }
    print(json.dumps(record, indent=2))
    if args.output:
        Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
