#!/usr/bin/env python
"""Serving benchmark: SLO capacity per decoding method + wall-clock guard.

For each method in the suite this bench:

* searches the **max sustainable QPS** at the completion SLO (goodput ratio
  ≥ ``--slo-target`` within ``--deadline-ms``) — a deterministic simulation
  metric, the serving headline of the paper's speedup claim;
* records the full SLO report (p50/p95/p99 completion and TTFT, goodput,
  device utilisation) at a common reference load ``--ref-qps``;
* sweeps the **cluster grid** — device count × router policy (colocated
  sharding, draft/target disaggregation, merged cross-request verification)
  × pool-split policy (fixed ``K // 2`` vs the workload-aware balanced
  planner) × device mix (homogeneous vs a ``2x1.0,2x0.5`` fast/slow
  heterogeneous cluster) — and records max sustainable QPS per point;
* sweeps the **streaming grid** — chunked audio delivery at several
  chunk-size × lookahead × real-time-factor points — recording word-level
  TTFT / chunk-emission / final-latency percentiles and asserting each
  point's transcripts bit-identical to the offline run of the same trace;
* asserts the scheduler determinism contract: serial (batch=1) and batched
  configurations produce bit-identical transcripts and per-request decode
  times, re-running the batched simulation reproduces identical completion
  latencies, and transcripts/decode times are identical across device
  counts, device specs, split policies and router policies.

Wall-clock throughput (simulated requests per second of host time) is also
measured, and ``--smoke`` compares it against the checked-in
``BENCH_serve.json`` baseline, failing on a >``--tolerance`` regression —
the serving counterpart of ``tools/bench_decode.py --smoke``.  The smoke
mode also re-checks the deterministic capacity ordering (every speculative
method must sustain more QPS than autoregressive), so a correctness
regression fails CI even on noisy runners.

Usage::

    PYTHONPATH=src python tools/bench_serve.py              # full bench
    PYTHONPATH=src python tools/bench_serve.py --smoke      # CI guard
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.models.acoustic import clear_acoustic_caches  # noqa: E402
from repro.serving import (  # noqa: E402
    ServeSimConfig,
    build_decoder,
    max_sustainable_qps,
    simulate,
)

#: Methods benchmarked, autoregressive first (the capacity baseline).
SERVE_METHODS = (
    "autoregressive",
    "spec(8,1)",
    "spec(16,1)",
    "specasr-asp",
    "specasr-tsp",
)

#: Fast/slow device mix used by the heterogeneous grid points.
HETERO_SPEC = "2x1.0,2x0.5"

#: Cluster grid swept by the full bench:
#: (devices, router policy, pool split, device spec).
CLUSTER_POINTS = (
    (1, "colocated", "fixed", ""),
    (2, "colocated", "fixed", ""),
    (2, "disaggregated", "fixed", ""),
    (2, "merged", "fixed", ""),
    (4, "colocated", "fixed", ""),
    (4, "disaggregated", "fixed", ""),
    (4, "disaggregated", "balanced", ""),
    (4, "merged", "fixed", ""),
    (4, "merged", "balanced", ""),
    (4, "colocated", "fixed", HETERO_SPEC),
    (4, "disaggregated", "fixed", HETERO_SPEC),
    (4, "disaggregated", "balanced", HETERO_SPEC),
    (4, "merged", "balanced", HETERO_SPEC),
)

#: Speculative methods the cluster grid is evaluated for.
CLUSTER_METHODS = ("spec(8,1)", "specasr-asp")

#: Chaos grid: sustained QPS at the SLO with 0/1/2 injected device failures
#: on the 4-device disaggregated cluster (crashes are permanent — the
#: harshest case; warm restarts are covered by the determinism check).
CHAOS_METHOD = "specasr-asp"
CHAOS_CLUSTER = (4, "disaggregated", "fixed", "")
CHAOS_POINTS = (
    ("0-failures", ""),
    ("1-failure", "crash@500:dev3"),
    ("2-failures", "crash@500:dev3;crash@1000:dev1"),
)

#: Fault plan exercised by the chaos determinism check (crash + warm
#: restart + transient errors, the acceptance scenario).
CHAOS_DETERMINISM_FAULTS = "crash@2000:dev3:restart=1500;perr:0.02"

#: Measured wall-clock A/B: the merged-verify cluster served once with the
#: scalar per-position oracle (``oracle_block_size=1``, the reference) and
#: once with the block-vectorised oracle, cold caches each leg.  Reports
#: must be bit-identical; only host wall time may differ.
WALL_AB_METHOD = "specasr-asp"
WALL_AB_CLUSTER = (4, "merged", "fixed", "")
WALL_AB_REPS = 3

#: Streaming grid: (label, chunk_s, lookahead_s, rtf) points swept with
#: chunked audio delivery.  Served at a light load so every stream
#: completes — the parity gate compares each point's transcripts against
#: the offline run of the same trace, which needs matching statuses.
STREAM_METHOD = "specasr-asp"
STREAM_QPS = 0.5
STREAM_POINTS = (
    ("chunk1.0-look0.3-rtf1", 1.0, 0.3, 1.0),
    ("chunk0.5-look0.3-rtf1", 0.5, 0.3, 1.0),
    ("chunk2.0-look0.6-rtf1", 2.0, 0.6, 1.0),
    ("chunk1.0-look0.3-rtf2", 1.0, 0.3, 2.0),
)
#: Ceiling on p95 chunk-emission latency (ms) for the smoke gate.  The
#: simulation is deterministic, so this is a correctness bound, not a noise
#: tolerance: measured p95 across the grid is well under half of this.
STREAM_EMISSION_P95_BOUND_MS = 1000.0

#: Memory grid: per-device KV capacities (blocks) probed per router point;
#: None = unconstrained (the legacy time-only cluster).
MEMORY_METHOD = "specasr-asp"
MEMORY_CAPACITIES = (None, 256, 96, 48)
MEMORY_CLUSTERS = ((2, "colocated"), (2, "disaggregated"))
#: Shared-prompt workload for the prefix-reuse comparison: a tiny corpus
#: maximises cross-request prompt overlap, so copy-on-write sharing is the
#: difference between fitting and thrashing at a tight capacity.
MEMORY_SHARED_UTTERANCES = 4
MEMORY_REUSE_CAPACITY = 48


def _point_key(devices: int, router: str, split: str, device_spec: str) -> str:
    """Stable grid-entry key; legacy points keep their PR-3 names."""
    key = f"{devices}x-{router}"
    if split != "fixed":
        key += f"-{split}"
    if device_spec:
        key += f"-hetero[{device_spec}]"
    return key


def _point_config(
    base: ServeSimConfig, devices: int, router: str, split: str, device_spec: str
) -> ServeSimConfig:
    return replace(
        base,
        devices=devices,
        router=router,
        pool_split=split,
        device_spec=device_spec,
    )


def _base_config(args, num_requests: int) -> ServeSimConfig:
    return ServeSimConfig(
        qps=args.ref_qps,
        num_requests=num_requests,
        seed=args.seed,
        utterances=args.utterances,
        deadline_ms=args.deadline_ms,
    )


def _check_determinism(config: ServeSimConfig) -> None:
    """Serial vs batched vs clustered: identical per-request transcripts
    and decode times; batched twice: identical completion latencies."""
    from repro.harness.runner import load_split
    from repro.serving import ContinuousBatchScheduler, make_trace

    decoder = build_decoder(config)
    serial = replace(config, max_batch=1, max_inflight=1)
    reports = {
        "serial": simulate(serial, decoder=decoder),
        "batched": simulate(config, decoder=decoder),
        "batched2": simulate(config, decoder=decoder),
    }
    if reports["batched"].to_dict() != reports["batched2"].to_dict():
        raise AssertionError("re-running the batched simulation diverged")
    a, b = reports["serial"], reports["batched"]
    if (a.decode and b.decode) and a.decode.to_dict() != b.decode.to_dict():
        raise AssertionError(
            "per-request decode time depends on scheduling — "
            "determinism contract violated"
        )
    # Cluster contract, per request: same trace, any device count, any
    # device spec, any split policy, any router policy — bit-identical
    # transcripts and decode times.
    dataset = load_split(config.split, config.experiment_config())
    trace = make_trace(
        config.arrival, config.num_requests, config.qps, len(dataset), config.seed
    )
    reference = None
    for devices, router, split, device_spec in CLUSTER_POINTS:
        point = _point_config(config, devices, router, split, device_spec)
        scheduler = ContinuousBatchScheduler(
            decoder, config.scheduler_config(), point.cluster_config()
        )
        records = scheduler.run(trace, dataset)
        outputs = [(r.tokens, r.decode_ms) for r in records]
        if reference is None:
            reference = outputs
        elif outputs != reference:
            raise AssertionError(
                "transcripts or decode times changed on "
                f"{_point_key(devices, router, split, device_spec)} "
                "— cluster determinism contract violated"
            )
    # Memory parity contract: ample capacity admits every phase, so the
    # memory-enabled run is bit-identical to the memory-disabled scheduler.
    from repro.serving import MemorySpec

    ample = ContinuousBatchScheduler(
        decoder,
        config.scheduler_config(),
        config.cluster_config(),
        memory=MemorySpec(device_blocks=1_000_000),
    )
    outputs = [(r.tokens, r.decode_ms) for r in ample.run(trace, dataset)]
    if outputs != reference:
        raise AssertionError(
            "ample-capacity memory accounting changed transcripts or decode "
            "times — memory parity contract violated"
        )
    # Chaos contract: a seeded fault plan (crash + warm restart + transient
    # errors) is fully deterministic, conserves requests, and every request
    # that still completes has a transcript bit-identical to the fault-free
    # run.
    from repro.serving import parse_fault_spec

    devices, router, split, device_spec = CHAOS_CLUSTER
    point = _point_config(config, devices, router, split, device_spec)
    plan = parse_fault_spec(CHAOS_DETERMINISM_FAULTS)
    runs = []
    for _ in range(2):
        scheduler = ContinuousBatchScheduler(
            decoder, config.scheduler_config(), point.cluster_config(), faults=plan
        )
        records = scheduler.run(trace, dataset)
        runs.append(
            [
                (r.status, tuple(r.tokens), r.decode_ms, r.finish_ms, r.retries)
                for r in records
            ]
        )
        terminal = sum(
            1 for r in records if r.status in ("completed", "rejected", "shed")
        )
        if terminal != len(records):
            raise AssertionError(
                "request conservation violated under the chaos fault plan"
            )
        assert reference is not None
        for record, (ref_tokens, ref_decode) in zip(records, reference, strict=True):
            if record.status == "completed" and (
                record.tokens != ref_tokens or record.decode_ms != ref_decode
            ):
                raise AssertionError(
                    f"{record.request.request_id}: transcript diverged from "
                    "the fault-free run under the chaos fault plan"
                )
    if runs[0] != runs[1]:
        raise AssertionError("re-running the chaos simulation diverged")


def _cluster_entry(
    args, method: str, num_requests: int, colocated_1x: float | None = None
) -> dict:
    """Max sustainable QPS across the device-count × router grid.

    ``colocated_1x`` reuses an already-searched single-device value (the
    per-method entry computes the identical configuration).
    """
    decoder = build_decoder(replace(_base_config(args, num_requests), method=method))
    grid = {}
    for devices, router, split, device_spec in CLUSTER_POINTS:
        key = _point_key(devices, router, split, device_spec)
        if key == "1x-colocated" and colocated_1x is not None:
            grid[key] = colocated_1x
            continue
        config = _point_config(
            replace(_base_config(args, num_requests), method=method),
            devices,
            router,
            split,
            device_spec,
        )
        max_qps, _ = max_sustainable_qps(
            config, target_ratio=args.slo_target, decoder=decoder
        )
        grid[key] = round(max_qps, 3)
    return grid


def _method_entry(args, method: str, num_requests: int) -> dict:
    config = replace(_base_config(args, num_requests), method=method)
    decoder = build_decoder(config)
    reference = simulate(config, decoder=decoder)
    max_qps, probes = max_sustainable_qps(
        config, target_ratio=args.slo_target, decoder=decoder
    )
    return {
        "max_sustainable_qps": round(max_qps, 3),
        "search_probes": len(probes),
        "simulated_requests": num_requests * (1 + len(probes)),
        "at_ref_qps": reference.to_dict(),
    }


def _chaos_entry(args, num_requests: int) -> dict:
    """Sustained QPS at the SLO with 0/1/2 injected failures (K=4 disagg)."""
    devices, router, split, device_spec = CHAOS_CLUSTER
    base = _point_config(
        replace(_base_config(args, num_requests), method=CHAOS_METHOD),
        devices,
        router,
        split,
        device_spec,
    )
    decoder = build_decoder(base)
    grid = {}
    for label, faults in CHAOS_POINTS:
        config = replace(base, faults=faults)
        max_qps, _ = max_sustainable_qps(
            config, target_ratio=args.slo_target, decoder=decoder
        )
        grid[label] = round(max_qps, 3)
    fault_free = grid["0-failures"]
    return {
        "method": CHAOS_METHOD,
        "cluster": _point_key(devices, router, split, device_spec),
        "faults": dict(CHAOS_POINTS),
        "max_sustainable_qps": grid,
        "retention_vs_fault_free": {
            label: round(qps / fault_free, 3) if fault_free > 0 else None
            for label, qps in grid.items()
        },
    }


def _memory_entry(args, num_requests: int) -> dict:
    """Max sustainable QPS across the KV-capacity × router memory grid.

    Includes the shared-prompt prefix-reuse comparison: every request
    decodes one of ``MEMORY_SHARED_UTTERANCES`` prompts at a capacity tight
    enough that copy-on-write sharing decides how many sessions fit.
    """
    base = replace(_base_config(args, num_requests), method=MEMORY_METHOD)
    decoder = build_decoder(base)
    grid = {}
    for devices, router in MEMORY_CLUSTERS:
        for capacity in MEMORY_CAPACITIES:
            label = "unbounded" if capacity is None else str(capacity)
            config = replace(
                base, devices=devices, router=router, memory_blocks=capacity
            )
            max_qps, _ = max_sustainable_qps(
                config, target_ratio=args.slo_target, decoder=decoder
            )
            grid[f"{devices}x-{router}@{label}"] = round(max_qps, 3)
    shared = replace(
        base,
        utterances=MEMORY_SHARED_UTTERANCES,
        devices=2,
        memory_blocks=MEMORY_REUSE_CAPACITY,
    )
    reuse = {}
    for label, sharing in (("prefix-reuse", True), ("no-reuse", False)):
        config = replace(shared, prefix_sharing=sharing)
        max_qps, _ = max_sustainable_qps(
            config, target_ratio=args.slo_target, decoder=decoder
        )
        reuse[label] = round(max_qps, 3)
    return {
        "method": MEMORY_METHOD,
        "capacities_blocks": [
            c if c is not None else "unbounded" for c in MEMORY_CAPACITIES
        ],
        "capacity_grid_max_sustainable_qps": grid,
        "shared_prompt": {
            "utterances": MEMORY_SHARED_UTTERANCES,
            "memory_blocks": MEMORY_REUSE_CAPACITY,
            "max_sustainable_qps": reuse,
        },
    }


def _streaming_entry(args, num_requests: int) -> dict:
    """Streaming grid: chunked delivery at several chunk/lookahead/RTF
    points, each checked bit-identical to the offline run of its trace.

    Per point: the same Poisson trace is served twice — once with every
    arrival streaming its audio at ``rtf`` (the scheduler gates decode
    progress on heard audio) and once offline — and the per-request
    transcripts and decode times must match exactly.  The entry records the
    word-level TTFT / chunk-emission / final-latency percentiles of the
    streamed leg.
    """
    from repro.harness.runner import load_split
    from repro.serving import (
        Arrival,
        ContinuousBatchScheduler,
        StreamSpec,
        StreamingSummary,
        make_trace,
    )

    base = replace(
        _base_config(args, num_requests), method=STREAM_METHOD, qps=STREAM_QPS
    )
    decoder = build_decoder(base)
    dataset = load_split(base.split, base.experiment_config())
    points = {}
    for label, chunk_s, lookahead_s, rtf in STREAM_POINTS:
        trace = make_trace(
            base.arrival, num_requests, base.qps, len(dataset), base.seed, rtf=rtf
        )
        offline_trace = [
            Arrival(a.index, a.utterance_index, a.arrival_ms, a.priority)
            for a in trace
        ]
        spec = StreamSpec(
            enabled=True, rtf=rtf, chunk_s=chunk_s, lookahead_s=lookahead_s
        )
        streamed = ContinuousBatchScheduler(
            decoder, base.scheduler_config(), base.cluster_config(), stream=spec
        ).run(trace, dataset)
        offline = ContinuousBatchScheduler(
            decoder, base.scheduler_config(), base.cluster_config()
        ).run(offline_trace, dataset)
        identical = len(streamed) == len(offline) and all(
            s.status == o.status
            and s.tokens == o.tokens
            and s.decode_ms == o.decode_ms
            for s, o in zip(streamed, offline, strict=True)
        )
        summary = StreamingSummary.from_records(streamed)
        assert summary is not None  # every arrival in the trace streams
        points[label] = {
            "chunk_s": chunk_s,
            "lookahead_s": lookahead_s,
            "rtf": rtf,
            "requests": summary.requests,
            "completed": summary.completed,
            "chunks": summary.chunks,
            "transcripts_identical": identical,
            "partial_stability": summary.partial_stability,
            "word_ttft_ms": (
                summary.word_ttft.to_dict() if summary.word_ttft else None
            ),
            "emission_latency_ms": (
                summary.emission_latency.to_dict()
                if summary.emission_latency
                else None
            ),
            "final_latency_ms": (
                summary.final_latency.to_dict() if summary.final_latency else None
            ),
        }
    return {
        "method": STREAM_METHOD,
        "qps": STREAM_QPS,
        "requests": num_requests,
        "emission_p95_bound_ms": STREAM_EMISSION_P95_BOUND_MS,
        "points": points,
    }


def _environment() -> dict:
    """Interpreter/library versions the wall numbers were measured under."""
    import platform

    import numpy

    return {"python": platform.python_version(), "numpy": numpy.__version__}


def _wall_ab_entry(args, num_requests: int, reps: int = WALL_AB_REPS) -> dict:
    """Measured (not simulated) wall time: scalar vs vectorised oracle on
    the merged-verify cluster, best-of-``reps`` cold runs per leg."""
    devices, router, split, device_spec = WALL_AB_CLUSTER
    config = _point_config(
        replace(_base_config(args, num_requests), method=WALL_AB_METHOD),
        devices,
        router,
        split,
        device_spec,
    )
    walls = {}
    reports = {}
    for label, block_size in (("scalar", 1), ("vectorized", None)):
        best = float("inf")
        for _ in range(reps):
            clear_acoustic_caches()
            decoder = build_decoder(config, oracle_block_size=block_size)
            start = time.perf_counter()
            report = simulate(config, decoder=decoder)
            best = min(best, time.perf_counter() - start)
        walls[label] = best
        reports[label] = report.to_dict()
    return {
        "method": WALL_AB_METHOD,
        "cluster": _point_key(devices, router, split, device_spec),
        "requests": num_requests,
        "reps": reps,
        "scalar_wall_s": round(walls["scalar"], 4),
        "vectorized_wall_s": round(walls["vectorized"], 4),
        "speedup": round(walls["scalar"] / walls["vectorized"], 3),
        "reports_identical": reports["scalar"] == reports["vectorized"],
    }


def run_bench(args) -> dict:
    config = _base_config(args, args.requests)
    _check_determinism(replace(config, method="specasr-asp"))

    start = time.perf_counter()
    methods = {}
    for method in SERVE_METHODS:
        clear_acoustic_caches()
        methods[method] = _method_entry(args, method, args.requests)
    cluster = {}
    for method in CLUSTER_METHODS:
        clear_acoustic_caches()
        cluster[method] = _cluster_entry(
            args,
            method,
            args.requests,
            colocated_1x=methods[method]["max_sustainable_qps"],
        )
    clear_acoustic_caches()
    chaos = _chaos_entry(args, args.requests)
    clear_acoustic_caches()
    memory = _memory_entry(args, args.requests)
    clear_acoustic_caches()
    streaming = _streaming_entry(args, args.requests)
    wall_s = time.perf_counter() - start
    wall_ab = _wall_ab_entry(args, args.requests)

    baseline_qps = methods["autoregressive"]["max_sustainable_qps"]
    capacity_vs_ar = {
        name: (
            round(entry["max_sustainable_qps"] / baseline_qps, 3)
            if baseline_qps > 0
            else None
        )
        for name, entry in methods.items()
    }
    # Every probe simulation of the max-QPS search processes a full request
    # trace, so it counts toward simulator throughput.
    simulated = sum(entry["simulated_requests"] for entry in methods.values())
    report = {
        "config": {
            "methods": list(SERVE_METHODS),
            "ref_qps": args.ref_qps,
            "requests": args.requests,
            "utterances": args.utterances,
            "seed": args.seed,
            "deadline_ms": args.deadline_ms,
            "slo_target": args.slo_target,
        },
        "slo": {
            "deadline_ms": args.deadline_ms,
            "target_goodput_ratio": args.slo_target,
        },
        "methods": methods,
        "capacity_vs_autoregressive": capacity_vs_ar,
        "cluster_max_sustainable_qps": cluster,
        "chaos": chaos,
        "memory": memory,
        "streaming": streaming,
        "determinism": {
            "serial_vs_batched_decode_identical": True,
            "batched_rerun_identical": True,
            "cluster_transcripts_and_decode_identical": True,
            "memory_ample_capacity_parity": True,
            "chaos_rerun_identical": True,
            "chaos_surviving_transcripts_identical": True,
            "chaos_request_conservation": True,
        },
        "wall": {
            "wall_s": round(wall_s, 4),
            "sim_requests_per_s": round(simulated / wall_s, 2),
            "merged_router_oracle_ab": wall_ab,
        },
        "environment": _environment(),
    }
    return report


#: Cluster points probed by the smoke guard, for one speculative method.
SMOKE_CLUSTER_POINTS = (
    (1, "colocated", "fixed", ""),
    (2, "colocated", "fixed", ""),
    (2, "disaggregated", "fixed", ""),
    (4, "disaggregated", "fixed", ""),
    (4, "disaggregated", "balanced", ""),
)
SMOKE_CLUSTER_METHOD = "specasr-asp"

#: Cold repetitions of the smoke measurement; the best wall time is kept
#: (the bench_decode idiom — QPS numbers are deterministic, reps only
#: de-noise the machine-dependent throughput reading).
SMOKE_MEASURE_REPS = 2


def _smoke_measure(args) -> dict:
    """Small deterministic workload timed for the regression guard."""
    best_wall = float("inf")
    for _ in range(SMOKE_MEASURE_REPS):
        start = time.perf_counter()
        entries, cluster, simulated = _smoke_measure_once(args)
        best_wall = min(best_wall, time.perf_counter() - start)
    return {
        "requests": args.smoke_requests,
        "max_sustainable_qps": entries,
        "cluster_max_sustainable_qps": {SMOKE_CLUSTER_METHOD: cluster},
        "wall_s": round(best_wall, 4),
        "sim_requests_per_s": round(simulated / best_wall, 2),
    }


def _smoke_measure_once(args) -> tuple[dict, dict, int]:
    entries = {}
    cluster = {}
    simulated = 0
    for method in SERVE_METHODS:
        clear_acoustic_caches()
        config = replace(_base_config(args, args.smoke_requests), method=method)
        decoder = build_decoder(config)
        max_qps, probes = max_sustainable_qps(
            config,
            target_ratio=args.slo_target,
            refine_steps=3,
            decoder=decoder,
        )
        entries[method] = round(max_qps, 3)
        simulated += args.smoke_requests * len(probes)
        if method == SMOKE_CLUSTER_METHOD:
            for devices, router, split, device_spec in SMOKE_CLUSTER_POINTS:
                key = _point_key(devices, router, split, device_spec)
                if key == "1x-colocated":
                    # identical to the search just done for entries[method]
                    cluster[key] = entries[method]
                    continue
                point = _point_config(config, devices, router, split, device_spec)
                point_qps, point_probes = max_sustainable_qps(
                    point,
                    target_ratio=args.slo_target,
                    refine_steps=3,
                    decoder=decoder,
                )
                cluster[key] = round(point_qps, 3)
                simulated += args.smoke_requests * len(point_probes)
    return entries, cluster, simulated


def _chaos_smoke(args) -> int:
    """Chaos guard: capacity retention and determinism under one failure.

    Asserts that one injected device failure on the 4-device disaggregated
    cluster retains >= 0.5x the fault-free sustained QPS, that the chaos
    simulation is rerun-identical, and that requests are conserved.
    """
    chaos = _chaos_entry(args, args.smoke_requests)
    grid = chaos["max_sustainable_qps"]
    print(
        f"chaos [{chaos['method']} @ {chaos['cluster']}]: "
        + ", ".join(f"{label} {qps} qps" for label, qps in grid.items())
    )
    if args.smoke_output:
        out = Path(args.smoke_output)
        path = out.with_name(out.stem + "_chaos" + out.suffix)
        path.write_text(json.dumps(chaos, indent=2) + "\n")
        print(f"wrote {path}")
    fault_free = grid["0-failures"]
    one_failure = grid["1-failure"]
    if fault_free <= 0:
        print("FAIL: fault-free chaos baseline sustains no load", file=sys.stderr)
        return 1
    if one_failure < 0.5 * fault_free:
        print(
            f"FAIL: one injected failure drops sustained QPS to "
            f"{one_failure} (< 0.5x the fault-free {fault_free})",
            file=sys.stderr,
        )
        return 1
    devices, router, split, device_spec = CHAOS_CLUSTER
    point = _point_config(
        replace(
            _base_config(args, args.smoke_requests),
            method=CHAOS_METHOD,
            faults=CHAOS_DETERMINISM_FAULTS,
        ),
        devices,
        router,
        split,
        device_spec,
    )
    decoder = build_decoder(point)
    first = simulate(point, decoder=decoder)
    second = simulate(point, decoder=decoder)
    if first.to_dict() != second.to_dict():
        print("FAIL: re-running the chaos simulation diverged", file=sys.stderr)
        return 1
    if first.completed + first.rejected + first.shed != first.num_requests:
        print(
            "FAIL: request conservation violated under the chaos fault plan",
            file=sys.stderr,
        )
        return 1
    print(
        f"chaos determinism: rerun identical, conservation holds "
        f"({first.completed} completed / {first.rejected} rejected / "
        f"{first.shed} shed of {first.num_requests})"
    )
    return 0


def _memory_smoke(args) -> int:
    """Memory guard: bounded degradation under pressure, reuse helps.

    Asserts that the tightest KV capacity on the 2-device colocated cluster
    still sustains >= 0.3x the unconstrained QPS, and that copy-on-write
    prefix sharing sustains at least as much load as disabling it on the
    shared-prompt workload.
    """
    memory = _memory_entry(args, args.smoke_requests)
    grid = memory["capacity_grid_max_sustainable_qps"]
    reuse = memory["shared_prompt"]["max_sustainable_qps"]
    print(
        f"memory [{memory['method']}]: "
        + ", ".join(f"{label} {qps} qps" for label, qps in grid.items())
    )
    print(
        f"memory shared-prompt @ {memory['shared_prompt']['memory_blocks']} "
        f"blocks: prefix-reuse {reuse['prefix-reuse']} qps, "
        f"no-reuse {reuse['no-reuse']} qps"
    )
    if args.smoke_output:
        out = Path(args.smoke_output)
        path = out.with_name(out.stem + "_memory" + out.suffix)
        path.write_text(json.dumps(memory, indent=2) + "\n")
        print(f"wrote {path}")
    unbounded = grid["2x-colocated@unbounded"]
    tight = grid[f"2x-colocated@{min(c for c in MEMORY_CAPACITIES if c)}"]
    if unbounded <= 0:
        print("FAIL: unconstrained memory baseline sustains no load", file=sys.stderr)
        return 1
    if tight < 0.3 * unbounded:
        print(
            f"FAIL: tight KV capacity drops sustained QPS to {tight} "
            f"(< 0.3x the unconstrained {unbounded})",
            file=sys.stderr,
        )
        return 1
    if reuse["prefix-reuse"] < reuse["no-reuse"]:
        print(
            f"FAIL: prefix reuse ({reuse['prefix-reuse']}) sustains less "
            f"load than no sharing ({reuse['no-reuse']}) on the "
            "shared-prompt workload",
            file=sys.stderr,
        )
        return 1
    return 0


def _streaming_smoke(args) -> int:
    """Streaming guard: the grid completes, parity holds, emission bounded.

    Fails when any grid point leaves a stream uncompleted, when a streamed
    transcript or decode time differs from the offline run of the same
    trace (``transcripts_identical``), or when p95 chunk-emission latency
    exceeds ``STREAM_EMISSION_P95_BOUND_MS``.
    """
    streaming = _streaming_entry(args, args.smoke_requests)
    for label, point in streaming["points"].items():
        emission = point["emission_latency_ms"]
        p95 = emission["p95"] if emission else 0.0
        print(
            f"streaming [{streaming['method']} @ {label}]: "
            f"{point['completed']}/{point['requests']} completed, "
            f"{point['chunks']} chunks, identical "
            f"{point['transcripts_identical']}, emission p95 {p95:.1f} ms"
        )
    if args.smoke_output:
        out = Path(args.smoke_output)
        path = out.with_name(out.stem + "_streaming" + out.suffix)
        path.write_text(json.dumps(streaming, indent=2) + "\n")
        print(f"wrote {path}")
    for label, point in streaming["points"].items():
        if point["completed"] != point["requests"]:
            print(
                f"FAIL: streaming point {label} completed "
                f"{point['completed']}/{point['requests']} streams",
                file=sys.stderr,
            )
            return 1
        if not point["transcripts_identical"]:
            print(
                f"FAIL: streaming point {label} diverged from the offline "
                "run — streaming parity contract violated",
                file=sys.stderr,
            )
            return 1
        emission = point["emission_latency_ms"]
        if emission and emission["p95"] > STREAM_EMISSION_P95_BOUND_MS:
            print(
                f"FAIL: streaming point {label} p95 chunk-emission latency "
                f"{emission['p95']} ms exceeds the "
                f"{STREAM_EMISSION_P95_BOUND_MS} ms bound",
                file=sys.stderr,
            )
            return 1
    return 0


def run_smoke(args) -> int:
    if args.chaos:
        status = _chaos_smoke(args)
        if status != 0:
            return status
    status = _memory_smoke(args)
    if status != 0:
        return status
    status = _streaming_smoke(args)
    if status != 0:
        return status
    ab = _wall_ab_entry(args, args.smoke_requests, reps=2)
    print(
        f"merged-router oracle A/B: scalar {ab['scalar_wall_s']}s vs "
        f"vectorized {ab['vectorized_wall_s']}s ({ab['speedup']}x), "
        f"reports identical: {ab['reports_identical']}"
    )
    if not ab["reports_identical"]:
        print(
            "FAIL: the vectorised oracle changed the merged-router serve "
            "report — bit-identity contract violated",
            file=sys.stderr,
        )
        return 1
    if ab["speedup"] < 1.0:
        print(
            f"FAIL: the vectorised oracle serves the merged cluster slower "
            f"than the scalar reference ({ab['speedup']}x)",
            file=sys.stderr,
        )
        return 1
    smoke = _smoke_measure(args)
    smoke["merged_router_oracle_ab"] = ab
    smoke["environment"] = _environment()
    print(
        f"smoke: {smoke['sim_requests_per_s']} simulated requests/s "
        f"({len(SERVE_METHODS)} methods, incl. search probes)"
    )
    if args.smoke_output:
        Path(args.smoke_output).write_text(json.dumps(smoke, indent=2) + "\n")
        print(f"wrote {args.smoke_output}")

    ar_qps = smoke["max_sustainable_qps"]["autoregressive"]
    slower = [
        name
        for name, qps in smoke["max_sustainable_qps"].items()
        if name != "autoregressive" and qps <= ar_qps
    ]
    if slower:
        print(
            f"FAIL: speculative method(s) {slower} no longer sustain more "
            f"QPS than autoregressive ({ar_qps})",
            file=sys.stderr,
        )
        return 1

    # Multi-device guard: sharding across 2 devices must retain (almost)
    # single-device capacity, draft/target disaggregation must not fall
    # behind colocated sharding at equal device count, and the workload-
    # aware balanced split must sustain at least the fixed K//2 split on a
    # homogeneous 4-device cluster.
    cluster = smoke["cluster_max_sustainable_qps"][SMOKE_CLUSTER_METHOD]
    coloc1 = cluster["1x-colocated"]
    coloc2 = cluster["2x-colocated"]
    disagg2 = cluster["2x-disaggregated"]
    disagg4_fixed = cluster["4x-disaggregated"]
    disagg4_balanced = cluster["4x-disaggregated-balanced"]
    print(
        f"cluster [{SMOKE_CLUSTER_METHOD}]: 1x colocated {coloc1} qps, "
        f"2x colocated {coloc2} qps, 2x disaggregated {disagg2} qps, "
        f"4x disaggregated fixed {disagg4_fixed} / balanced "
        f"{disagg4_balanced} qps"
    )
    if coloc2 < 0.9 * coloc1:
        print(
            f"FAIL: 2-device colocated capacity ({coloc2}) fell below 0.9x "
            f"of the single device ({coloc1})",
            file=sys.stderr,
        )
        return 1
    if disagg2 < coloc2:
        print(
            f"FAIL: disaggregated serving ({disagg2}) no longer matches "
            f"colocated sharding ({coloc2}) at 2 devices",
            file=sys.stderr,
        )
        return 1
    if disagg4_balanced < disagg4_fixed:
        print(
            f"FAIL: balanced pool split ({disagg4_balanced}) fell behind "
            f"the fixed K//2 split ({disagg4_fixed}) at 4 devices",
            file=sys.stderr,
        )
        return 1

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; nothing to compare", file=sys.stderr)
        return 0
    baseline = json.loads(args.baseline.read_text())
    reference = baseline.get("smoke", {}).get("sim_requests_per_s")
    if not reference:
        print("baseline JSON has no smoke reference; skipping check")
        return 0
    floor = reference * (1.0 - args.tolerance)
    print(
        f"baseline {reference} requests/s -> floor {floor:.2f} "
        f"(tolerance {args.tolerance:.0%})"
    )
    if smoke["sim_requests_per_s"] < floor:
        print(
            f"FAIL: simulator throughput regressed more than "
            f"{args.tolerance:.0%} ({smoke['sim_requests_per_s']} < "
            f"{floor:.2f})",
            file=sys.stderr,
        )
        return 1
    print("OK: within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ref-qps",
        type=float,
        default=2.0,
        help="common reference load for the SLO reports",
    )
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--utterances", type=int, default=32)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--deadline-ms", type=float, default=3000.0)
    parser.add_argument("--slo-target", type=float, default=0.95)
    parser.add_argument("--output", type=Path, default=REPO_ROOT / "BENCH_serve.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced run; fail on >tolerance regression",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="with --smoke: also assert fault-injection capacity retention "
        "(1 failure >= 0.5x fault-free) and chaos determinism",
    )
    parser.add_argument("--smoke-requests", type=int, default=24)
    parser.add_argument(
        "--smoke-output",
        type=Path,
        default=None,
        help="write the smoke measurement JSON here (CI " "artifact)",
    )
    parser.add_argument("--baseline", type=Path, default=REPO_ROOT / "BENCH_serve.json")
    parser.add_argument("--tolerance", type=float, default=0.20)
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke(args)

    report = run_bench(args)
    # Record the smoke reference alongside, so --smoke has a baseline.
    report["smoke"] = _smoke_measure(args)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
